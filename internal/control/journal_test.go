package control

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"dblayout/internal/layout"
	"dblayout/internal/migrate"
	"dblayout/internal/wal"
)

// mustEncodeJournal CRC-frames any mix of controller and migration records.
func mustEncodeJournal(recs ...interface{}) []byte {
	var buf bytes.Buffer
	for _, r := range recs {
		body, err := json.Marshal(r)
		if err != nil {
			panic(err)
		}
		if err := wal.Append(&buf, body); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

func encodeJournal(t *testing.T, recs ...interface{}) []byte {
	t.Helper()
	return mustEncodeJournal(recs...)
}

func testBegin() Record {
	return Record{T: recBegin, N: 2, M: 2, Rows: [][]float64{{1, 0}, {0, 1}}, Seed: 9}
}

func testSteps() []migrate.Step {
	return []migrate.Step{{
		Move: layout.Move{Object: 0, From: 0, To: 1, Fraction: 0.5, Bytes: 1024},
	}}
}

func testPlan(epoch, attempt int) Record {
	return Record{T: recPlan, Epoch: epoch, Attempt: attempt, Steps: testSteps(), Reason: "test"}
}

// Engine-namespace records for an epoch's segment.
func segPlan() migrate.Record  { return migrate.Record{T: "plan", Steps: testSteps()} }
func segAbort() migrate.Record { return migrate.Record{T: "abort", Failed: []int{1}, Reason: "x"} }
func segState(step int, state string) migrate.Record {
	return migrate.Record{T: "state", Step: step, State: state}
}
func segDone() migrate.Record { return migrate.Record{T: "done"} }

func doneSegment() []interface{} {
	return []interface{}{
		segPlan(),
		segState(0, "copying"), segState(0, "copied"), segState(0, "committed"),
		segDone(),
	}
}

func flatten(recs ...interface{}) []interface{} {
	var out []interface{}
	for _, r := range recs {
		if rs, ok := r.([]interface{}); ok {
			out = append(out, rs...)
			continue
		}
		out = append(out, r)
	}
	return out
}

// TestRecoverRejects exercises the journal grammar: every sequence the
// controller could not have produced must be detected as corruption.
func TestRecoverRejects(t *testing.T) {
	cases := []struct {
		name string
		recs []interface{}
	}{
		{"empty journal", nil},
		{"no cbegin", []interface{}{testPlan(1, 1)}},
		{"second cbegin", []interface{}{testBegin(), testBegin()}},
		{"cbegin row shape", []interface{}{Record{T: recBegin, N: 2, M: 2, Rows: [][]float64{{1, 0}}, Seed: 9}}},
		{"cbegin bad layout", []interface{}{Record{T: recBegin, N: 2, M: 2, Rows: [][]float64{{0.5, 0}, {0, 1}}, Seed: 9}}},
		{"migration record outside epoch", []interface{}{testBegin(), segPlan()}},
		{"cplan epoch skip", []interface{}{testBegin(), testPlan(2, 1)}},
		{"cplan attempt mismatch", []interface{}{testBegin(), testPlan(1, 2)}},
		{"cplan no steps", []interface{}{testBegin(), Record{T: recPlan, Epoch: 1, Attempt: 1}}},
		{"cplan while open", []interface{}{testBegin(), testPlan(1, 1), testPlan(2, 1)}},
		{"coutcome without epoch", []interface{}{testBegin(), Record{T: recOutcome, Epoch: 1, Outcome: outcomeDone}}},
		{"coutcome epoch mismatch", flatten(testBegin(), testPlan(1, 1), doneSegment(),
			Record{T: recOutcome, Epoch: 2, Outcome: outcomeDone})},
		{"coutcome empty segment", []interface{}{testBegin(), testPlan(1, 1),
			Record{T: recOutcome, Epoch: 1, Outcome: outcomeDone}}},
		{"outcome done vs aborted segment", []interface{}{testBegin(), testPlan(1, 1), segPlan(), segAbort(),
			Record{T: recOutcome, Epoch: 1, Outcome: outcomeDone}}},
		{"outcome aborted vs done segment", flatten(testBegin(), testPlan(1, 1), doneSegment(),
			Record{T: recOutcome, Epoch: 1, Outcome: outcomeAborted})},
		{"unknown outcome", flatten(testBegin(), testPlan(1, 1), doneSegment(),
			Record{T: recOutcome, Epoch: 1, Outcome: "maybe"})},
		{"cretry while open", []interface{}{testBegin(), testPlan(1, 1),
			Record{T: recRetry, Epoch: 1, Attempt: 2, Delay: 1}}},
		{"cretry attempt mismatch", []interface{}{testBegin(),
			Record{T: recRetry, Attempt: 3, Delay: 1}}},
		{"cretry negative delay", []interface{}{testBegin(),
			Record{T: recRetry, Attempt: 2, Delay: -1}}},
		{"cplan before retry decision", []interface{}{testBegin(), testPlan(1, 1), segPlan(), segAbort(),
			Record{T: recOutcome, Epoch: 1, Outcome: outcomeAborted, Failed: []int{1}},
			testPlan(2, 1)}},
		{"segment diverges from cplan", []interface{}{testBegin(), testPlan(1, 1),
			migrate.Record{T: "plan", Steps: []migrate.Step{{
				Move: layout.Move{Object: 0, From: 1, To: 0, Fraction: 0.5, Bytes: 2048},
			}}}}},
	}
	for _, tc := range cases {
		data := encodeJournal(t, tc.recs...)
		ck, err := Recover(data)
		if err == nil {
			t.Errorf("%s: accepted (checkpoint %+v)", tc.name, ck)
			continue
		}
		if !errors.Is(err, ErrControllerCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrControllerCorrupt", tc.name, err)
		}
	}
}

// TestRecoverStates walks the valid crash points of one episode and checks
// the recovered state at each.
func TestRecoverStates(t *testing.T) {
	begin := testBegin()

	t.Run("cbegin only", func(t *testing.T) {
		ck, err := Recover(encodeJournal(t, begin))
		if err != nil {
			t.Fatal(err)
		}
		if ck.Epoch != 0 || ck.Attempt != 1 || ck.Open != nil || ck.Retry != nil || ck.Cooling || ck.NeedRetryDecision {
			t.Fatalf("checkpoint: %+v", ck)
		}
		if ck.Current.At(0, 0) != 1 || ck.Current.At(1, 1) != 1 {
			t.Fatalf("layout not the cbegin one: %v", ck.Current)
		}
	})

	t.Run("open epoch no engine records", func(t *testing.T) {
		ck, err := Recover(encodeJournal(t, begin, testPlan(1, 1)))
		if err != nil {
			t.Fatal(err)
		}
		if ck.Open == nil || ck.Open.Checkpoint != nil {
			t.Fatalf("open epoch: %+v", ck.Open)
		}
	})

	t.Run("open epoch mid copy", func(t *testing.T) {
		ck, err := Recover(encodeJournal(t, begin, testPlan(1, 1), segPlan(), segState(0, "copying"),
			migrate.Record{T: "progress", Step: 0, Done: 512}))
		if err != nil {
			t.Fatal(err)
		}
		if ck.Open == nil || ck.Open.Checkpoint == nil {
			t.Fatalf("open epoch: %+v", ck.Open)
		}
		if got := ck.Open.Checkpoint.Progress[0]; got != 512 {
			t.Fatalf("progress: %d", got)
		}
	})

	t.Run("done epoch cooling", func(t *testing.T) {
		ck, err := Recover(encodeJournal(t, flatten(begin, testPlan(1, 1), doneSegment(),
			Record{T: recOutcome, Epoch: 1, Outcome: outcomeDone, Cooldown: 3})...))
		if err != nil {
			t.Fatal(err)
		}
		if !ck.Cooling || ck.Open != nil || ck.Attempt != 1 {
			t.Fatalf("checkpoint: %+v", ck)
		}
		// The committed half-move must be applied.
		if got := ck.Current.At(0, 1); got != 0.5 {
			t.Fatalf("committed step not applied: row0 %v", ck.Current.Row(0))
		}
	})

	t.Run("aborted epoch needs decision", func(t *testing.T) {
		ck, err := Recover(encodeJournal(t, begin, testPlan(1, 1), segPlan(), segAbort(),
			Record{T: recOutcome, Epoch: 1, Outcome: outcomeAborted, Failed: []int{1}}))
		if err != nil {
			t.Fatal(err)
		}
		if !ck.NeedRetryDecision || ck.Retry != nil || ck.Cooling {
			t.Fatalf("checkpoint: %+v", ck)
		}
		if len(ck.Failed) != 1 || ck.Failed[0] != 1 {
			t.Fatalf("failed set: %v", ck.Failed)
		}
	})

	t.Run("aborted epoch with cretry", func(t *testing.T) {
		ck, err := Recover(encodeJournal(t, begin, testPlan(1, 1), segPlan(), segAbort(),
			Record{T: recOutcome, Epoch: 1, Outcome: outcomeAborted, Failed: []int{1}},
			Record{T: recRetry, Epoch: 1, Attempt: 2, Delay: 3, Cause: "abort"}))
		if err != nil {
			t.Fatal(err)
		}
		if ck.NeedRetryDecision || ck.Retry == nil || ck.Retry.Delay != 3 || ck.Attempt != 2 {
			t.Fatalf("checkpoint: %+v", ck)
		}
	})

	t.Run("give-up cools down", func(t *testing.T) {
		ck, err := Recover(encodeJournal(t, begin, testPlan(1, 1), segPlan(), segAbort(),
			Record{T: recOutcome, Epoch: 1, Outcome: outcomeAborted, Failed: []int{1}},
			Record{T: recFail, Attempt: 1, Cause: "abort"}))
		if err != nil {
			t.Fatal(err)
		}
		if !ck.Cooling || ck.Attempt != 1 || ck.NeedRetryDecision {
			t.Fatalf("checkpoint: %+v", ck)
		}
	})

	t.Run("torn tail ignored", func(t *testing.T) {
		data := encodeJournal(t, begin, testPlan(1, 1))
		torn := append(append([]byte(nil), data...), []byte("deadbeef {\"t\":\"cpl")...)
		ck, err := Recover(TruncateTorn(torn))
		if err != nil {
			t.Fatal(err)
		}
		if ck.Open == nil {
			t.Fatalf("checkpoint: %+v", ck)
		}
	})
}

// TestResumeRemakesRetryDecision: a crash between the aborted outcome and its
// retry decision resumes by re-making exactly that decision, journaling it.
func TestResumeRemakesRetryDecision(t *testing.T) {
	f := newCtFixture(t)
	rows := make([][]float64, f.initial.N)
	for i := range rows {
		rows[i] = f.initial.Row(i)
	}
	cfg := f.config(&bytes.Buffer{}, nil)
	steps := testSteps()
	data := encodeJournal(t,
		Record{T: recBegin, N: f.initial.N, M: f.initial.M, Rows: rows, Seed: cfg.Seed},
		Record{T: recPlan, Epoch: 1, Attempt: 1, Steps: steps, Reason: "test"},
		migrate.Record{T: "plan", Steps: steps},
		segAbort(),
		Record{T: recOutcome, Epoch: 1, Outcome: outcomeAborted, Failed: []int{1}},
	)
	journal := bytes.NewBuffer(append([]byte(nil), data...))
	cfg = f.config(journal, data)
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.Status().Phase != PhaseBackoff {
		t.Fatalf("phase after pending-decision resume: %v", c.Status().Phase)
	}
	ck, err := Recover(journal.Bytes())
	if err != nil {
		t.Fatalf("journal after resume: %v", err)
	}
	if ck.Retry == nil || ck.Retry.Attempt != 2 {
		t.Fatalf("retry decision not journaled: %+v", ck)
	}
	// Resuming again from the extended journal must reproduce the same
	// state without journaling anything new — the decision was made once.
	before := journal.Len()
	c2, err := New(f.config(journal, journal.Bytes()))
	if err != nil {
		t.Fatalf("second resume: %v", err)
	}
	if c2.Status().Phase != PhaseBackoff || journal.Len() != before {
		t.Fatalf("second resume re-decided: phase %v, journal grew %d bytes",
			c2.Status().Phase, journal.Len()-before)
	}
}

// buildTortureJournal drives a real controller through an abort, a retry and
// a completed repair epoch, returning the full journal — the richest record
// stream one episode can produce.
func buildTortureJournal(t *testing.T) []byte {
	t.Helper()
	f := newCtFixture(t)
	f.sim.devs[3].FailAt = 3.5
	var journal bytes.Buffer
	c, err := New(f.config(&journal, nil))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w := f.feed(t, c, 0, 3, f.steady, nil)
	w = f.feed(t, c, w, 1, f.drifted, f.steady)
	for i := 0; i < 60; i++ {
		if st := c.Status(); st.Phase == PhaseObserving && st.Epoch > 0 && c.Status().Attempt == 1 {
			break
		}
		w = f.feed(t, c, w, 1, f.drifted, nil)
	}
	if c.Crashed() {
		t.Fatalf("torture fixture crashed: %v", c.Err())
	}
	data := journal.Bytes()
	if _, err := Recover(data); err != nil {
		t.Fatalf("torture journal does not recover: %v", err)
	}
	return data
}

// TestJournalPrefixTorture: every byte-length prefix of a real journal — the
// state a crash at any write boundary or mid-write leaves behind — must
// recover after torn-tail truncation. This is the crash-at-every-record (and
// every byte) torture for the combined controller+engine stream.
func TestJournalPrefixTorture(t *testing.T) {
	data := buildTortureJournal(t)
	for l := 1; l <= len(data); l++ {
		durable := TruncateTorn(data[:l])
		if len(durable) == 0 {
			continue
		}
		ck, err := Recover(durable)
		if err != nil {
			t.Fatalf("prefix %d/%d bytes: %v", l, len(data), err)
		}
		if err := ck.Current.CheckIntegrity(); err != nil {
			t.Fatalf("prefix %d/%d bytes: recovered layout: %v", l, len(data), err)
		}
	}
}

// TestJournalCorruptionSweep: flipping any single byte of the durable journal
// must be detected (except the final newline, whose loss just makes the last
// record torn). Corruption is never misread as valid state.
func TestJournalCorruptionSweep(t *testing.T) {
	data := buildTortureJournal(t)
	for i := 0; i < len(data)-1; i++ {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x5a
		if _, err := Recover(bad); err == nil {
			t.Fatalf("flipped byte %d (%q) not detected", i, data[i])
		} else if !errors.Is(err, ErrControllerCorrupt) {
			t.Fatalf("flipped byte %d: error %v does not wrap ErrControllerCorrupt", i, err)
		}
	}
	// Final newline: the last record degrades to a torn line, which is a
	// legal crash artifact, not corruption.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0x5a
	if _, err := Recover(TruncateTorn(bad)); err != nil {
		t.Fatalf("torn final record: %v", err)
	}
}
