// Package control implements the autonomic control loop the paper's Sec. 7
// sketches as future work: Observe → Detect → Re-advise → Migrate → Cooldown,
// running unattended against a live (simulated) storage system. It composes
// the existing pieces — the windowed workload fitter (rubicon.Windowed), the
// drift detector (obs.Detector), the layout advisor (core), and the online
// migration engine (migrate) — into one crash-safe state machine.
//
// Robustness is the point. Every decision is journaled through the CRC-framed
// write-ahead protocol of internal/wal before it takes effect, in the same
// file the migration engine journals its step transitions to, so a crash at
// any record resumes exactly-once: no migration is lost, none starts twice.
// Migration aborts and solve failures feed a deterministic retry policy
// (exponential backoff with seeded jitter); a cost-benefit gate and a
// post-migration cooldown prevent oscillation; infeasible re-advises fall
// down the advisor's solve → heuristic → SEE degradation ladder rather than
// stalling the loop.
package control

import (
	"context"
	"fmt"
	"io"
	"log/slog"

	"dblayout/internal/core"
	"dblayout/internal/layout"
	"dblayout/internal/migrate"
	"dblayout/internal/obs"
	"dblayout/internal/rubicon"
)

// Phase is the controller's lifecycle state.
type Phase int

// Controller phases.
const (
	// PhaseObserving: watching window fits, ready to detect drift.
	PhaseObserving Phase = iota
	// PhaseMigrating: a migration epoch is in flight; at most one ever is.
	PhaseMigrating
	// PhaseCooldown: a migration completed; detections are deferred until
	// the cooldown windows elapse (hysteresis against oscillation).
	PhaseCooldown
	// PhaseBackoff: a failed attempt is waiting out its retry backoff.
	PhaseBackoff
	// PhaseCrashed: a journal write failed; the controller stopped without
	// applying the transition the record announced. Restart and resume.
	PhaseCrashed
)

var phaseNames = [...]string{"observing", "migrating", "cooldown", "backoff", "crashed"}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Config configures a Controller. Instance, Current (or Resume), IO and
// Journal are required; everything else has working defaults.
type Config struct {
	// Instance is the layout problem: objects, targets with calibrated
	// cost models, and a baseline workload set (replaced per window fit
	// when re-advising).
	Instance *layout.Instance
	// Current is the layout the system starts on. Ignored when Resume is
	// non-empty — the journal is then authoritative.
	Current *layout.Layout
	// IO is the simulation surface migrations execute against
	// (*replay.BackgroundIO, or a deterministic fake in tests).
	IO migrate.IO
	// Journal receives the write-ahead record stream. A nil journal still
	// runs correctly but cannot be resumed after a crash.
	Journal io.Writer
	// Resume holds the contents of a prior journal (after TruncateTorn).
	// The controller recovers its exact state from it and Journal should
	// be the same file opened for append.
	Resume []byte
	// Seed derives every random stream the controller uses (solver seeds,
	// backoff jitter) via internal/seed.
	Seed int64

	// Advisor tunes the re-advise solves. The NLP seed is overridden per
	// (epoch, attempt).
	Advisor core.Options

	// Drift supplies the hysteresis shape (Trigger, Clear, MinInterval)
	// shared by both detection signals; per-signal thresholds come from
	// UtilThreshold and OverlapThreshold below, so Drift.Threshold is
	// ignored.
	Drift obs.DriftConfig
	// UtilThreshold fires the predicted_utilization signal when the
	// current layout's predicted max utilization under a window's fitted
	// workload reaches it (default 0.9): the layout no longer fits the
	// workload. Values < 0 disable the signal.
	UtilThreshold float64
	// OverlapThreshold fires the overlap_distance signal when successive
	// window fits' overlap matrices diverge by at least it (default 0.1):
	// the workload's composition changed shape. Values < 0 disable.
	OverlapThreshold float64

	// MinGain is the smallest predicted max-utilization gain worth
	// migrating for (default 0.02).
	MinGain float64
	// HorizonSeconds is the amortization horizon of the cost-benefit
	// gate: a migration may start only when gain × HorizonSeconds covers
	// the estimated copy time (default 3600). Repairs after device
	// failures are exempt — evacuation beats amortization.
	HorizonSeconds float64
	// CooldownWindows is the number of refit windows the controller
	// stays quiet after a completed migration or an exhausted retry
	// chain (default 4).
	CooldownWindows int
	// MaxAttempts bounds the tries per drift episode, the first attempt
	// included (default 3). Exhaustion journals a terminal cfail and
	// surfaces ErrRetriesExhausted.
	MaxAttempts int
	// BaseBackoffWindows and MaxBackoffWindows shape the exponential
	// retry backoff, in refit windows (defaults 2 and 16).
	BaseBackoffWindows int
	MaxBackoffWindows  int

	// Migration tunes the engine (copy rate, queue share, chunking).
	// Journal, Resume, Checkpoint, Scratch and FailedSources are managed
	// by the controller and must be left unset.
	Migration migrate.Options

	// Logger, Events and Metrics are optional observability sinks, passed
	// through to the drift detectors and used for the controller's own
	// phase/epoch gauges and action counters.
	Logger  *slog.Logger
	Events  *obs.JSONL
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.UtilThreshold == 0 {
		c.UtilThreshold = 0.9
	}
	if c.OverlapThreshold == 0 {
		c.OverlapThreshold = 0.1
	}
	if c.MinGain == 0 {
		c.MinGain = 0.02
	}
	if c.HorizonSeconds == 0 {
		c.HorizonSeconds = 3600
	}
	if c.CooldownWindows <= 0 {
		c.CooldownWindows = 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoffWindows <= 0 {
		c.BaseBackoffWindows = 2
	}
	if c.MaxBackoffWindows <= 0 {
		c.MaxBackoffWindows = 16
	}
	return c
}

// Action is one consequential controller decision, kept for reporting and
// for tests asserting the loop's behavior (e.g. zero actions under a steady
// workload).
type Action struct {
	Kind    string  `json:"kind"` // detect, skip, migrate-start, migrate-done, abort, retry, give-up, cooldown-end, resume
	Window  int64   `json:"window"`
	Time    float64 `json:"t"`
	Epoch   int     `json:"epoch,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
	Signal  string  `json:"signal,omitempty"`
	Gain    float64 `json:"gain,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

// Status is a snapshot of the controller's externally visible state.
type Status struct {
	Phase    Phase
	Epoch    int // migration epochs started so far
	Attempt  int // attempt number the next try carries
	Cooldown int // refit windows of cooldown remaining
	Backoff  int // refit windows of backoff remaining
	Failed   []int
	Windows  int64 // window fits observed
}

// Controller is the autonomic control loop. It is single-threaded by design:
// ObserveFit and the migration engine's callbacks must run on the same
// simulation event loop (as they do under replay and in the chaos harness).
type Controller struct {
	cfg Config
	jw  *journalWriter

	utilDet    *obs.Detector
	overlapDet *obs.Detector

	current *layout.Layout
	epoch   int
	attempt int // attempt number the next try carries (1 = fresh episode)
	failed  []int

	phase    Phase
	cooldown int
	backoff  int
	engine   *migrate.Engine

	lastFit *rubicon.WindowFit
	windows int64
	actions []Action
	err     error // sticky crash (or terminal resume) error

	mPhase    *obs.Gauge
	mEpoch    *obs.Gauge
	mActions  *obs.Counter
	mRetries  *obs.Counter
	mSkips    *obs.Counter
	mFailures *obs.Counter
}

// New builds (or, when cfg.Resume is non-empty, resumes) a controller. A
// resumed controller restarts an in-flight migration epoch from its journal
// checkpoint immediately — committed steps are skipped, a mid-copy step
// restarts at its last progress mark. Corrupt journals return an error
// wrapping ErrControllerCorrupt; they are never silently reinterpreted.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if cfg.Instance == nil {
		return nil, fmt.Errorf("control: Config.Instance is required")
	}
	if cfg.IO == nil {
		return nil, fmt.Errorf("control: Config.IO is required")
	}
	if err := cfg.Instance.Validate(); err != nil {
		return nil, fmt.Errorf("control: instance: %w", err)
	}
	c := &Controller{
		cfg:     cfg,
		jw:      &journalWriter{w: cfg.Journal},
		attempt: 1,
		phase:   PhaseObserving,
	}
	det := func(threshold float64) *obs.Detector {
		if threshold < 0 {
			return nil // nil Detector ignores observations
		}
		d := cfg.Drift
		d.Threshold = threshold
		return obs.NewDetector(d, cfg.Logger, cfg.Events, cfg.Metrics)
	}
	c.utilDet = det(cfg.UtilThreshold)
	c.overlapDet = det(cfg.OverlapThreshold)
	if r := cfg.Metrics; r != nil {
		c.mPhase = r.Gauge(obs.Name("controller_phase"))
		c.mEpoch = r.Gauge(obs.Name("controller_epoch"))
		c.mActions = r.Counter(obs.Name("controller_actions_total"))
		c.mRetries = r.Counter(obs.Name("controller_retries_total"))
		c.mSkips = r.Counter(obs.Name("controller_skips_total"))
		c.mFailures = r.Counter(obs.Name("controller_failures_total"))
	}

	if len(cfg.Resume) > 0 {
		if err := c.resume(cfg.Resume); err != nil {
			return nil, err
		}
		return c, nil
	}

	if cfg.Current == nil {
		return nil, fmt.Errorf("control: Config.Current is required for a fresh start")
	}
	if err := cfg.Instance.ValidateLayout(cfg.Current); err != nil {
		return nil, fmt.Errorf("control: starting layout: %w", err)
	}
	c.current = cfg.Current.Clone()
	rows := make([][]float64, c.current.N)
	for i := range rows {
		rows[i] = c.current.Row(i)
	}
	if !c.journal(Record{T: recBegin, N: c.current.N, M: c.current.M, Rows: rows, Seed: cfg.Seed}) {
		return nil, c.err
	}
	c.setPhase(PhaseObserving)
	return c, nil
}

// resume reconstructs controller state from a prior journal and restarts any
// in-flight migration epoch.
func (c *Controller) resume(data []byte) error {
	ck, err := Recover(data)
	if err != nil {
		return err
	}
	if ck.N != c.cfg.Instance.N() || ck.M != c.cfg.Instance.M() {
		return fmt.Errorf("control: journal is for a %dx%d instance, config has %dx%d",
			ck.N, ck.M, c.cfg.Instance.N(), c.cfg.Instance.M())
	}
	if ck.Seed != c.cfg.Seed {
		return fmt.Errorf("control: journal seed %d does not match config seed %d", ck.Seed, c.cfg.Seed)
	}
	c.current = ck.Current
	c.epoch = ck.Epoch
	c.attempt = ck.Attempt
	c.failed = ck.Failed
	c.act(Action{Kind: "resume", Time: c.cfg.IO.Now(), Epoch: c.epoch, Attempt: c.attempt})

	if open := ck.Open; open != nil {
		mck := open.Checkpoint
		switch {
		case mck != nil && mck.Done:
			// The engine finished but the crash beat the outcome record.
			mck.ApplyCommitted(c.current)
			c.finishDone(open.Plan.Epoch)
		case mck != nil && mck.Aborted:
			// Likewise for an abort: close the epoch and decide the retry
			// now; both are deterministic, so this is exactly-once.
			mck.ApplyCommitted(c.current)
			c.finishAborted(open.Plan.Epoch, mck.Failed,
				fmt.Errorf("resumed after abort, targets %v failed", mck.Failed))
		default:
			// Mid-flight (or crashed before the engine journaled its plan
			// record): restart the engine from the checkpoint.
			if err := c.startEngine(open.Plan, mck); err != nil {
				return fmt.Errorf("control: resuming epoch %d: %w", open.Plan.Epoch, err)
			}
		}
		return c.err
	}
	if ck.NeedRetryDecision {
		// The crash landed between an aborted outcome and its retry
		// decision. The decision is deterministic given the journal, so
		// re-making it here is exactly-once. An exhausted budget is
		// informational (the loop enters cooldown); only a fresh crash
		// fails the resume.
		_ = c.scheduleRetry("abort", fmt.Errorf("resumed after aborted epoch %d", ck.Epoch))
		return c.err
	}
	if ck.Retry != nil {
		// The backoff countdown is not journaled per window; restart it in
		// full from the journaled delay (conservative: a crash can only
		// lengthen the wait, never double-start the retry).
		c.backoff = ck.Retry.Delay
		c.setPhase(PhaseBackoff)
		return nil
	}
	if ck.Cooling {
		// Same conservatism for the cooldown countdown.
		c.cooldown = c.cfg.CooldownWindows
		c.setPhase(PhaseCooldown)
		return nil
	}
	c.setPhase(PhaseObserving)
	return nil
}

// ObserveFit feeds one window fit from the live trace into the loop — the
// controller's only clock. It decrements cooldown/backoff countdowns, feeds
// the drift detectors, and, when a detection fires while the loop is
// observing, re-advises synchronously and (gate permitting) starts a
// migration. The returned error is a crash (sticky; the process should
// restart and resume) or ErrRetriesExhausted (the loop already recovered by
// entering cooldown; the error is informational).
func (c *Controller) ObserveFit(fit rubicon.WindowFit) error {
	if c.phase == PhaseCrashed {
		return c.err
	}
	c.windows++
	f := fit
	c.lastFit = &f

	// Detection runs in every phase so signal hysteresis tracks the
	// workload continuously; what changes per phase is whether an event
	// may act.
	event := c.detect(fit)

	switch c.phase {
	case PhaseMigrating:
		if event != nil {
			c.act(Action{Kind: "detect", Window: fit.Window, Time: fit.End,
				Signal: event.Signal, Detail: "deferred: migration in flight"})
		}
		return nil
	case PhaseCooldown:
		if event != nil {
			c.act(Action{Kind: "detect", Window: fit.Window, Time: fit.End,
				Signal: event.Signal, Detail: "deferred: cooldown"})
		}
		c.cooldown--
		if c.cooldown <= 0 {
			c.act(Action{Kind: "cooldown-end", Window: fit.Window, Time: fit.End})
			c.setPhase(PhaseObserving)
		}
		return nil
	case PhaseBackoff:
		c.backoff--
		if c.backoff <= 0 {
			return c.readvise(fit, "retry")
		}
		return nil
	}

	if event == nil {
		return nil
	}
	c.act(Action{Kind: "detect", Window: fit.Window, Time: fit.End,
		Signal: event.Signal, Gain: event.Value})
	return c.readvise(fit, event.Signal)
}

// detect feeds both drift signals for one fit and returns the first fired
// event, if any.
func (c *Controller) detect(fit rubicon.WindowFit) *obs.DriftEvent {
	var event *obs.DriftEvent
	if util, err := c.predictedUtil(fit); err == nil {
		if ev := c.utilDet.Observe("predicted_utilization", fit.Window, fit.End, util); event == nil {
			event = ev
		}
	}
	if ev := c.overlapDet.Observe("overlap_distance", fit.Window, fit.End, fit.OverlapDistance); event == nil {
		event = ev
	}
	return event
}

// predictedUtil evaluates the current layout's predicted max utilization
// under the window's fitted workload, treating the cost models as untrusted.
func (c *Controller) predictedUtil(fit rubicon.WindowFit) (u float64, err error) {
	defer func() {
		if p := recover(); p != nil {
			u, err = 0, layout.AsModelFailure(p)
		}
	}()
	inst := c.instanceFor(fit)
	if inst.Workloads == nil || inst.Workloads.Len() != inst.N() {
		return 0, fmt.Errorf("control: window fit has %d workloads for %d objects",
			workloadCount(fit), inst.N())
	}
	return layout.NewEvaluator(inst).MaxUtilization(c.current), nil
}

func workloadCount(fit rubicon.WindowFit) int {
	if fit.Set == nil {
		return 0
	}
	return fit.Set.Len()
}

// instanceFor clones the configured instance with the window's fitted
// workload set in place of the baseline one.
func (c *Controller) instanceFor(fit rubicon.WindowFit) *layout.Instance {
	inst := *c.cfg.Instance
	inst.Workloads = fit.Set
	return &inst
}

// readvise runs one attempt: advise a new layout for the fitted workload,
// plan and script the migration, apply the cost-benefit gate, and start the
// engine. Hard failures feed the retry policy; the degradation ladder inside
// the advisor absorbs soft ones.
func (c *Controller) readvise(fit rubicon.WindowFit, reason string) error {
	attempt := c.attempt
	epoch := c.epoch + 1
	target, gain, repair, err := c.advise(fit, epoch, attempt)
	if err != nil {
		return c.retryFailure(fit, "advise", err)
	}

	sizes := c.cfg.Instance.Sizes()
	caps := c.cfg.Instance.Capacities()
	plan, err := layout.MigrationPlan(c.current, target, sizes)
	if err != nil {
		return c.retryFailure(fit, "plan", err)
	}
	if len(plan) == 0 {
		c.skip(fit, reason, gain, "advised layout equals current")
		return nil
	}
	// Scratch selection sees failed targets as capacity zero: after an
	// evacuation the failed device has the most free space of all, and
	// AutoScratch must never stage data onto it.
	scratchCaps := caps
	if len(c.failed) > 0 {
		scratchCaps = append([]int64(nil), caps...)
		for _, j := range c.failed {
			if j >= 0 && j < len(scratchCaps) {
				scratchCaps[j] = 0
			}
		}
	}
	scratch := migrate.AutoScratch(c.current, target, sizes, scratchCaps)
	steps, err := migrate.BuildScript(c.current, plan, sizes, caps, scratch)
	if err != nil {
		return c.retryFailure(fit, "plan", err)
	}

	// The cost-benefit gate: the predicted gain must clear the floor and
	// amortize the copy within the horizon. Repairs are exempt — an
	// evacuation is about survival, not amortization.
	if !repair {
		if gain < c.cfg.MinGain {
			c.skip(fit, reason, gain, fmt.Sprintf("gain %.4f below floor %.4f", gain, c.cfg.MinGain))
			return nil
		}
		if rate := c.cfg.Migration.BytesPerSec; rate > 0 {
			copySec := float64(migrate.ScriptBytes(steps)) / rate
			if gain*c.cfg.HorizonSeconds < copySec {
				c.skip(fit, reason, gain,
					fmt.Sprintf("copy time %.0fs exceeds amortized benefit %.0fs", copySec, gain*c.cfg.HorizonSeconds))
				return nil
			}
		}
	}

	rec := Record{
		T: recPlan, Epoch: epoch, Attempt: attempt,
		Steps: steps, Scratch: &scratch, Reason: reason, Gain: gain,
		Sources: append([]int(nil), c.failed...),
	}
	if !c.journal(rec) {
		return c.err
	}
	c.epoch = epoch
	c.mEpoch.Set(float64(epoch))
	if err := c.startEngine(rec, nil); err != nil {
		// The script validated in BuildScript, so this is unexpected —
		// but feeding it the retry policy keeps the loop alive. The
		// opened epoch closes as aborted with no engine records is not
		// representable, so treat it as a crash: the journal must not be
		// left with a dangling cplan that never aborts.
		c.err = fmt.Errorf("control: engine start: %w", err)
		c.setPhase(PhaseCrashed)
		return c.err
	}
	c.act(Action{Kind: "migrate-start", Window: fit.Window, Time: fit.End,
		Epoch: epoch, Attempt: attempt, Signal: reason, Gain: gain,
		Detail: fmt.Sprintf("%d steps, %d bytes", len(steps), migrate.ScriptBytes(steps))})
	return nil
}

// advise produces the target layout for one attempt. With failed targets
// still holding data it runs the failure-aware repair (evacuation); otherwise
// the full advisor on an instance that denies the failed targets.
func (c *Controller) advise(fit rubicon.WindowFit, epoch, attempt int) (target *layout.Layout, gain float64, repairMode bool, err error) {
	inst := c.instanceFor(fit)
	if err := inst.Validate(); err != nil {
		return nil, 0, false, fmt.Errorf("control: fitted instance: %w", err)
	}
	opt := c.cfg.Advisor
	opt.NLP.Seed = c.adviseSeed(epoch, attempt)
	opt.Logger = c.cfg.Logger

	uCur, uErr := c.predictedUtil(fit)

	if c.placesOnFailed() {
		rep, rerr := core.RecommendRepair(context.Background(), inst, c.current, c.failed, opt)
		if rerr != nil {
			return nil, 0, false, rerr
		}
		if uErr == nil {
			gain = uCur - rep.Objective
		}
		return rep.Layout, gain, true, nil
	}

	if len(c.failed) > 0 {
		inst, err = denyFailed(inst, c.failed)
		if err != nil {
			return nil, 0, false, err
		}
	}
	adv, aerr := core.New(inst, opt)
	if aerr != nil {
		return nil, 0, false, aerr
	}
	rec, aerr := adv.Recommend()
	if aerr != nil {
		return nil, 0, false, aerr
	}
	if uErr == nil {
		gain = uCur - rec.FinalObjective
	}
	return rec.Final, gain, false, nil
}

// placesOnFailed reports whether the current layout still stores bytes on a
// failed target — the condition that switches re-advising into repair mode.
func (c *Controller) placesOnFailed() bool {
	for _, j := range c.failed {
		for i := 0; i < c.current.N; i++ {
			if c.current.At(i, j) > layout.Epsilon {
				return true
			}
		}
	}
	return false
}

// denyFailed clones the instance with Deny constraints excluding the failed
// targets for every object, so the advisor never places data on them again.
func denyFailed(inst *layout.Instance, failed []int) (*layout.Instance, error) {
	out := *inst
	cons := &layout.Constraints{Deny: make(map[int][]int, inst.N())}
	if old := inst.Constraints; old != nil {
		cons.Allow = make(map[int][]int, len(old.Allow))
		for i, ts := range old.Allow {
			cons.Allow[i] = append([]int(nil), ts...)
		}
		for i, ts := range old.Deny {
			cons.Deny[i] = append([]int(nil), ts...)
		}
		cons.Separate = append([][2]int(nil), old.Separate...)
	}
	for i := 0; i < inst.N(); i++ {
		cons.Deny[i] = append(cons.Deny[i], failed...)
	}
	out.Constraints = cons
	if err := cons.Validate(inst.N(), inst.M()); err != nil {
		return nil, fmt.Errorf("control: denying failed targets: %w", err)
	}
	return &out, nil
}

// startEngine constructs and starts the migration engine for an epoch, fresh
// (ck nil — the engine journals its own plan record) or resumed from a
// recovered checkpoint.
func (c *Controller) startEngine(plan Record, ck *migrate.Checkpoint) error {
	opt := c.cfg.Migration
	opt.Journal = c.cfg.Journal
	opt.Checkpoint = ck
	if plan.Scratch != nil {
		opt.Scratch = *plan.Scratch
	}
	opt.FailedSources = append([]int(nil), c.failed...)
	opt.Metrics = c.cfg.Metrics
	epoch := plan.Epoch
	eng, err := migrate.NewEngine(c.cfg.IO, c.current, plan.Steps, opt, func(res *migrate.Result) {
		c.onMigrationDone(epoch, res)
	})
	if err != nil {
		return err
	}
	c.engine = eng
	c.setPhase(PhaseMigrating)
	eng.Start()
	return nil
}

// onMigrationDone is the engine's completion callback, running on the
// simulation event loop.
func (c *Controller) onMigrationDone(epoch int, res *migrate.Result) {
	c.engine = nil
	if res.Crashed {
		c.err = res.Err
		c.setPhase(PhaseCrashed)
		return
	}
	c.current = res.Layout.Clone()
	if res.Done {
		c.finishDone(epoch)
		return
	}
	c.finishAborted(epoch, res.FailedTargets, res.Err)
}

// finishDone closes a successful epoch: outcome record, cooldown, fresh
// attempt counter.
func (c *Controller) finishDone(epoch int) {
	if !c.journal(Record{T: recOutcome, Epoch: epoch, Outcome: outcomeDone, Cooldown: c.cfg.CooldownWindows}) {
		return
	}
	c.attempt = 1
	c.cooldown = c.cfg.CooldownWindows
	c.act(Action{Kind: "migrate-done", Time: c.cfg.IO.Now(), Epoch: epoch})
	c.setPhase(PhaseCooldown)
}

// finishAborted closes an aborted epoch and feeds the retry policy.
func (c *Controller) finishAborted(epoch int, failedTargets []int, cause error) {
	if !c.journal(Record{T: recOutcome, Epoch: epoch, Outcome: outcomeAborted, Failed: failedTargets}) {
		return
	}
	c.failed = mergeFailed(c.failed, failedTargets)
	c.act(Action{Kind: "abort", Time: c.cfg.IO.Now(), Epoch: epoch,
		Detail: fmt.Sprintf("targets %v failed", failedTargets)})
	c.scheduleRetry("abort", cause)
}

// retryFailure handles a failed re-advise or planning step (no epoch was
// opened) through the same retry policy as an abort.
func (c *Controller) retryFailure(fit rubicon.WindowFit, stage string, cause error) error {
	c.act(Action{Kind: "retry", Window: fit.Window, Time: fit.End,
		Attempt: c.attempt, Detail: fmt.Sprintf("%s failed: %v", stage, cause)})
	return c.scheduleRetry(stage, cause)
}

// scheduleRetry journals the retry decision: backoff before the next attempt,
// or a terminal cfail when the budget is spent. Deterministic given the
// journal, so a crash between the outcome and this record replays the same
// decision. Returns the sticky crash error, ErrRetriesExhausted on
// exhaustion (informational — the loop enters cooldown and keeps running),
// or nil.
func (c *Controller) scheduleRetry(stage string, cause error) error {
	if c.attempt >= c.cfg.MaxAttempts {
		if !c.journal(Record{T: recFail, Attempt: c.attempt, Cause: fmt.Sprint(cause)}) {
			return c.err
		}
		rerr := &RetryError{Epoch: c.epoch, Attempts: c.attempt, Cause: cause, Reason: stage}
		c.act(Action{Kind: "give-up", Time: c.cfg.IO.Now(), Epoch: c.epoch,
			Attempt: c.attempt, Detail: rerr.Error()})
		c.mFailures.Inc()
		c.attempt = 1
		c.cooldown = c.cfg.CooldownWindows
		c.setPhase(PhaseCooldown)
		return rerr
	}
	next := c.attempt + 1
	delay := c.backoffDelay(next)
	if !c.journal(Record{T: recRetry, Epoch: c.epoch, Attempt: next, Delay: delay, Cause: fmt.Sprint(cause)}) {
		return c.err
	}
	c.attempt = next
	c.backoff = delay
	c.mRetries.Inc()
	c.act(Action{Kind: "retry", Time: c.cfg.IO.Now(), Epoch: c.epoch,
		Attempt: next, Detail: fmt.Sprintf("backoff %d windows after %s failure", delay, stage)})
	c.setPhase(PhaseBackoff)
	return nil
}

// skip records a gated (not acted upon) detection and returns the loop to
// observing — in particular from a backoff expiry whose re-advise no longer
// wants to migrate (the drift resolved itself).
func (c *Controller) skip(fit rubicon.WindowFit, reason string, gain float64, detail string) {
	c.mSkips.Inc()
	c.act(Action{Kind: "skip", Window: fit.Window, Time: fit.End,
		Signal: reason, Gain: gain, Detail: detail})
	c.setPhase(PhaseObserving)
}

// journal appends one controller record, treating any write failure as a
// crash: the controller stops immediately without applying the transition
// the record announced. Returns false when the controller crashed.
func (c *Controller) journal(r Record) bool {
	if err := c.jw.append(r); err != nil {
		c.err = fmt.Errorf("control: journal write failed: %w", err)
		c.setPhase(PhaseCrashed)
		return false
	}
	return true
}

func (c *Controller) setPhase(p Phase) {
	c.phase = p
	c.mPhase.Set(float64(p))
}

func (c *Controller) act(a Action) {
	c.actions = append(c.actions, a)
	c.mActions.Inc()
	if c.cfg.Logger != nil {
		c.cfg.Logger.Info("controller action",
			"kind", a.Kind, "window", a.Window, "t", a.Time,
			"epoch", a.Epoch, "attempt", a.Attempt, "signal", a.Signal,
			"gain", a.Gain, "detail", a.Detail)
	}
	if c.cfg.Events != nil {
		_ = c.cfg.Events.Write(a)
	}
}

// Status returns a snapshot of the controller state.
func (c *Controller) Status() Status {
	return Status{
		Phase:    c.phase,
		Epoch:    c.epoch,
		Attempt:  c.attempt,
		Cooldown: c.cooldown,
		Backoff:  c.backoff,
		Failed:   append([]int(nil), c.failed...),
		Windows:  c.windows,
	}
}

// CurrentLayout returns a copy of the layout the controller believes the
// system implements (base plus every committed migration step).
func (c *Controller) CurrentLayout() *layout.Layout { return c.current.Clone() }

// Actions returns a copy of the action log, in order.
func (c *Controller) Actions() []Action { return append([]Action(nil), c.actions...) }

// Err returns the sticky crash error, nil while the controller is healthy.
func (c *Controller) Err() error { return c.err }

// Crashed reports whether the controller hit a journal write failure (or an
// unrecoverable engine start) and stopped.
func (c *Controller) Crashed() bool { return c.phase == PhaseCrashed }

// DriftEvents returns every drift event the controller's detectors fired.
func (c *Controller) DriftEvents() []obs.DriftEvent {
	evs := c.utilDet.Events()
	return append(evs, c.overlapDet.Events()...)
}
