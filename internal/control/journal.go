package control

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"dblayout/internal/layout"
	"dblayout/internal/migrate"
	"dblayout/internal/wal"
)

// The controller journal is one CRC-framed record stream (internal/wal)
// holding two record namespaces: controller records, whose type tags start
// with "c", and the migration engine's own records ("plan", "state",
// "progress", "abort", "done"), which the engine appends to the same writer
// while a migration epoch is open. One file therefore captures the whole
// loop — every decision and every byte-level migration transition — and a
// crash at any record resumes exactly-once from it.
//
// Record grammar (validated by Recover):
//
//	journal  := cbegin epoch*
//	epoch    := advise-fail | migration
//	advise-fail := cretry | cfail            (re-advise died before a plan)
//	migration := cplan migrate-records (coutcome (cretry | cfail)? )?
//
// A cplan opens epoch k (strictly increasing); the engine's records follow;
// coutcome closes the epoch as "done" or "aborted". An aborted outcome (or a
// failed re-advise) is followed by a cretry scheduling the next attempt, or
// by a cfail when the retry budget is spent. A journal may end anywhere — a
// crash — and Recover reconstructs the exact resume point.

// Controller record types.
const (
	recBegin   = "cbegin"
	recPlan    = "cplan"
	recOutcome = "coutcome"
	recRetry   = "cretry"
	recFail    = "cfail"
)

// Outcome values of a coutcome record.
const (
	outcomeDone    = "done"
	outcomeAborted = "aborted"
)

// Record is one controller journal entry.
type Record struct {
	// T is the record type: "cbegin", "cplan", "coutcome", "cretry",
	// "cfail".
	T string `json:"t"`

	// cbegin: the run identity — problem shape, starting layout, seed.
	N    int         `json:"n,omitempty"`
	M    int         `json:"m,omitempty"`
	Rows [][]float64 `json:"rows,omitempty"`
	Seed int64       `json:"seed,omitempty"`

	// cplan: a migration epoch opens.
	Epoch   int                  `json:"epoch,omitempty"`
	Attempt int                  `json:"attempt,omitempty"`
	Steps   []migrate.Step       `json:"steps,omitempty"`
	Scratch *migrate.ScratchSpec `json:"scratch,omitempty"`
	Reason  string               `json:"reason,omitempty"` // signal that triggered the re-advise
	Gain    float64              `json:"gain,omitempty"`   // predicted max-utilization gain
	Sources []int                `json:"sources,omitempty"`

	// coutcome: the epoch closed.
	Outcome  string `json:"outcome,omitempty"`
	Cooldown int    `json:"cooldown,omitempty"`
	Failed   []int  `json:"failed,omitempty"`

	// cretry / cfail: the retry decision after a failure.
	Delay int    `json:"delay,omitempty"` // refit windows until the next attempt
	Cause string `json:"cause,omitempty"`
}

// journalWriter appends CRC-framed controller records to a sink. A nil
// writer (no journal configured) accepts everything silently. Every
// controller record is a commit point (each one advances the loop's state
// machine), so each append fsyncs a sync-capable sink before the
// transition it announces takes effect.
type journalWriter struct {
	w io.Writer
}

func (j *journalWriter) append(r Record) error {
	if j == nil || j.w == nil {
		return nil
	}
	body, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if err := wal.Append(j.w, body); err != nil {
		return err
	}
	return wal.Sync(j.w)
}

// typeTag is the minimal decode that routes a frame to its namespace.
type typeTag struct {
	T string `json:"t"`
}

// DecodeRecordBody parses one CRC-validated frame body into a controller
// Record, rejecting unknown fields and unknown record types. The returned
// *CorruptError has Record 0; callers that know the frame index fill it in.
func DecodeRecordBody(body []byte) (Record, error) {
	var rec Record
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return Record{}, &CorruptError{Reason: fmt.Sprintf("bad JSON body: %v", err)}
	}
	switch rec.T {
	case recBegin, recPlan, recOutcome, recRetry, recFail:
	default:
		return Record{}, &CorruptError{Reason: fmt.Sprintf("unknown record type %q", rec.T)}
	}
	return rec, nil
}

// entry is one decoded journal frame: exactly one of ctrl/mig is meaningful.
type entry struct {
	idx  int
	ctrl *Record
	mig  *migrate.Record
}

// decodeEntries splits journal bytes into the interleaved controller and
// migration records. A torn final line is ignored; any other malformation
// returns a *CorruptError wrapping ErrControllerCorrupt. It never panics,
// regardless of input.
func decodeEntries(data []byte) ([]entry, error) {
	frames, err := wal.Frames(data)
	if err != nil {
		var fe *wal.FrameError
		if errors.As(err, &fe) {
			return nil, &CorruptError{Record: fe.Index, Reason: fe.Reason}
		}
		return nil, &CorruptError{Reason: err.Error()}
	}
	out := make([]entry, 0, len(frames))
	for i, body := range frames {
		var tag typeTag
		if err := json.Unmarshal(body, &tag); err != nil {
			return nil, &CorruptError{Record: i, Reason: fmt.Sprintf("bad JSON body: %v", err)}
		}
		if len(tag.T) > 0 && tag.T[0] == 'c' {
			rec, err := DecodeRecordBody(body)
			if err != nil {
				var ce *CorruptError
				if errors.As(err, &ce) {
					ce.Record = i
				}
				return nil, err
			}
			out = append(out, entry{idx: i, ctrl: &rec})
			continue
		}
		mrec, err := migrate.DecodeRecordBody(body)
		if err != nil {
			return nil, &CorruptError{Record: i, Reason: fmt.Sprintf("migration record: %v", err)}
		}
		out = append(out, entry{idx: i, mig: &mrec})
	}
	return out, nil
}

// RetryState is a pending cretry: the attempt it schedules and the backoff
// it chose.
type RetryState struct {
	Attempt int // the attempt number the retry will run
	Delay   int // refit windows of backoff chosen at journal time
	Cause   string
}

// OpenEpoch is a migration epoch whose coutcome is missing — the crash
// happened mid-migration (or between the engine finishing and the outcome
// record landing).
type OpenEpoch struct {
	// Plan is the cplan record that opened the epoch.
	Plan Record
	// Segment holds the engine's own records within the epoch, in order.
	Segment []migrate.Record
	// Checkpoint is the recovered engine state, nil when the crash landed
	// before the engine journaled anything (the epoch restarts fresh).
	Checkpoint *migrate.Checkpoint
}

// Checkpoint is the durable controller state recovered from a journal: where
// the loop was when the crash hit, and the exact layout implied by every
// committed migration step.
type Checkpoint struct {
	N, M int
	Seed int64
	// Base is the layout journaled at cbegin.
	Base *layout.Layout
	// Current is Base plus the committed steps of every closed epoch — the
	// layout an open epoch (if any) migrates from.
	Current *layout.Layout
	// Epoch is the last epoch a cplan opened (0 before any).
	Epoch int
	// Attempt is the attempt number the next try must carry: the open
	// epoch's attempt, a pending retry's attempt, or 1.
	Attempt int
	// Failed is the merged set of failed targets across all aborts.
	Failed []int
	// Open is the epoch in flight at the crash, nil when none.
	Open *OpenEpoch
	// Retry is a cretry whose attempt has not produced a cplan yet.
	Retry *RetryState
	// Cooling reports that the journal ends right after a successful
	// epoch: the controller was inside its post-migration cooldown.
	// The countdown itself is not journaled; resuming restarts it in full
	// (conservative, documented in DESIGN.md).
	Cooling bool
	// NeedRetryDecision reports that the journal ends right after an
	// aborted outcome whose retry decision (cretry or cfail) did not land
	// before the crash. The decision is deterministic given the journal,
	// so the resuming controller re-makes exactly it.
	NeedRetryDecision bool
}

// Recover replays decoded journal entries into a Checkpoint, validating that
// the sequence is one the controller could have produced. Violations return
// a *CorruptError wrapping ErrControllerCorrupt.
func Recover(data []byte) (*Checkpoint, error) {
	entries, err := decodeEntries(data)
	if err != nil {
		return nil, err
	}
	corrupt := func(idx int, format string, args ...interface{}) (*Checkpoint, error) {
		return nil, &CorruptError{Record: idx, Reason: fmt.Sprintf(format, args...)}
	}
	if len(entries) == 0 {
		return corrupt(0, "journal is empty (no cbegin record)")
	}

	var ck *Checkpoint
	var open *OpenEpoch
	needDecision := false // last record was coutcome(aborted); cretry/cfail must follow
	for _, e := range entries {
		if ck == nil {
			if e.ctrl == nil || e.ctrl.T != recBegin {
				return corrupt(e.idx, "journal must start with cbegin")
			}
			b := e.ctrl
			if b.N <= 0 || b.M <= 0 || len(b.Rows) != b.N {
				return corrupt(e.idx, "cbegin declares %dx%d but carries %d rows", b.N, b.M, len(b.Rows))
			}
			base := layout.New(b.N, b.M)
			for i, row := range b.Rows {
				if len(row) != b.M {
					return corrupt(e.idx, "cbegin row %d has %d targets, want %d", i, len(row), b.M)
				}
				base.SetRow(i, row)
			}
			if err := base.CheckIntegrity(); err != nil {
				return corrupt(e.idx, "cbegin layout: %v", err)
			}
			ck = &Checkpoint{
				N: b.N, M: b.M, Seed: b.Seed,
				Base: base, Current: base.Clone(), Attempt: 1,
			}
			continue
		}

		if e.mig != nil {
			if open == nil {
				return corrupt(e.idx, "migration record %q outside an open epoch", e.mig.T)
			}
			open.Segment = append(open.Segment, *e.mig)
			continue
		}

		r := e.ctrl
		switch r.T {
		case recBegin:
			return corrupt(e.idx, "second cbegin record")
		case recPlan:
			if open != nil {
				return corrupt(e.idx, "cplan for epoch %d while epoch %d is open", r.Epoch, open.Plan.Epoch)
			}
			if needDecision {
				return corrupt(e.idx, "cplan before the retry decision of aborted epoch %d", ck.Epoch)
			}
			if r.Epoch != ck.Epoch+1 {
				return corrupt(e.idx, "cplan epoch %d after epoch %d", r.Epoch, ck.Epoch)
			}
			if r.Attempt != ck.Attempt {
				return corrupt(e.idx, "cplan attempt %d, expected %d", r.Attempt, ck.Attempt)
			}
			if len(r.Steps) == 0 {
				return corrupt(e.idx, "cplan with no steps")
			}
			ck.Epoch = r.Epoch
			ck.Retry = nil
			ck.Cooling = false
			open = &OpenEpoch{Plan: *r}
		case recOutcome:
			if open == nil {
				return corrupt(e.idx, "coutcome with no open epoch")
			}
			if r.Epoch != open.Plan.Epoch {
				return corrupt(e.idx, "coutcome for epoch %d, open epoch is %d", r.Epoch, open.Plan.Epoch)
			}
			mck, err := recoverSegment(open, e.idx)
			if err != nil {
				return nil, err
			}
			if mck == nil {
				return corrupt(e.idx, "coutcome for an epoch with no migration records")
			}
			switch r.Outcome {
			case outcomeDone:
				if !mck.Done {
					return corrupt(e.idx, "outcome done but the migration segment is not")
				}
				ck.Attempt = 1
				ck.Cooling = true
			case outcomeAborted:
				if !mck.Aborted {
					return corrupt(e.idx, "outcome aborted but the migration segment is not")
				}
				ck.Failed = mergeFailed(ck.Failed, r.Failed)
				needDecision = true
			default:
				return corrupt(e.idx, "unknown outcome %q", r.Outcome)
			}
			mck.ApplyCommitted(ck.Current)
			if err := ck.Current.CheckIntegrity(); err != nil {
				return corrupt(e.idx, "layout after epoch %d: %v", r.Epoch, err)
			}
			open = nil
		case recRetry:
			if open != nil {
				return corrupt(e.idx, "cretry while epoch %d is open", open.Plan.Epoch)
			}
			if r.Attempt != ck.Attempt+1 {
				return corrupt(e.idx, "cretry schedules attempt %d after attempt %d", r.Attempt, ck.Attempt)
			}
			if r.Delay < 0 {
				return corrupt(e.idx, "cretry with negative delay %d", r.Delay)
			}
			ck.Attempt = r.Attempt
			ck.Retry = &RetryState{Attempt: r.Attempt, Delay: r.Delay, Cause: r.Cause}
			ck.Cooling = false
			needDecision = false
		case recFail:
			if open != nil {
				return corrupt(e.idx, "cfail while epoch %d is open", open.Plan.Epoch)
			}
			// A give-up enters cooldown, exactly as the live path does.
			ck.Attempt = 1
			ck.Retry = nil
			ck.Cooling = true
			needDecision = false
		}
	}

	ck.NeedRetryDecision = needDecision
	if open != nil {
		mck, err := recoverSegment(open, len(entries))
		if err != nil {
			return nil, err
		}
		open.Checkpoint = mck
		ck.Open = open
	}
	return ck, nil
}

// recoverSegment validates an epoch's embedded migration records against the
// epoch's plan and returns the engine checkpoint (nil for an empty segment).
func recoverSegment(open *OpenEpoch, idx int) (*migrate.Checkpoint, error) {
	if len(open.Segment) == 0 {
		return nil, nil
	}
	mck, err := migrate.Recover(open.Segment)
	if err != nil {
		return nil, &CorruptError{Record: idx, Reason: fmt.Sprintf("epoch %d migration segment: %v", open.Plan.Epoch, err)}
	}
	if len(mck.Steps) != len(open.Plan.Steps) {
		return nil, &CorruptError{Record: idx, Reason: fmt.Sprintf("epoch %d engine plans %d steps, cplan has %d",
			open.Plan.Epoch, len(mck.Steps), len(open.Plan.Steps))}
	}
	for i := range mck.Steps {
		if mck.Steps[i] != open.Plan.Steps[i] {
			return nil, &CorruptError{Record: idx, Reason: fmt.Sprintf("epoch %d engine step %d diverges from cplan",
				open.Plan.Epoch, i)}
		}
	}
	return mck, nil
}

// mergeFailed merges newly failed targets into the sorted, deduplicated set.
func mergeFailed(have, add []int) []int {
	out := append([]int(nil), have...)
	for _, j := range add {
		seen := false
		for _, k := range out {
			if k == j {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, j)
		}
	}
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k] < out[k-1]; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// TruncateTorn returns the journal prefix ending at the last newline,
// discarding a torn final line left by a crash mid-write. It is
// wal.TruncateTorn re-exported for symmetry with package migrate.
func TruncateTorn(data []byte) []byte {
	return wal.TruncateTorn(data)
}
