package control

import "dblayout/internal/seed"

// Discriminators separating the controller's derived seed streams under
// seed.StreamControl: re-advise solver seeds and retry-backoff jitter must
// never draw from the same sequence.
const (
	streamAdvise int64 = 1
	streamJitter int64 = 2
)

// backoffDelay computes the deterministic retry backoff, in refit windows,
// before the given attempt runs: exponential in the attempt number
// (base, 2×base, 4×base, ...) capped at MaxBackoffWindows, plus a seeded
// jitter in [0, base] derived from the (epoch, attempt) identity so
// simultaneous controllers sharing a base seed do not retry in lockstep.
// Attempt 2 is the first retry.
func (c *Controller) backoffDelay(attempt int) int {
	d := c.cfg.BaseBackoffWindows
	for i := 2; i < attempt && d < c.cfg.MaxBackoffWindows; i++ {
		d *= 2
	}
	if d > c.cfg.MaxBackoffWindows {
		d = c.cfg.MaxBackoffWindows
	}
	j := seed.Sub(c.cfg.Seed, seed.StreamControl, streamJitter, int64(c.epoch), int64(attempt))
	return d + int(uint64(j)%uint64(c.cfg.BaseBackoffWindows+1))
}

// adviseSeed derives the solver seed for one (epoch, attempt) re-advise, so
// no two solves in a controller's lifetime replay the same perturbation
// sequence and a crash-restarted attempt re-derives the same one.
func (c *Controller) adviseSeed(epoch, attempt int) int64 {
	return seed.Sub(c.cfg.Seed, seed.StreamControl, streamAdvise, int64(epoch), int64(attempt))
}
