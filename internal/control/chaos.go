package control

// The chaos harness: a deterministic campaign of fault-injection scenarios
// driving the controller through crashes, device failures, torn journal
// writes and corrupted journals, checking invariants after every simulated
// process lifetime. It lives in the package (not a _test file) so both the
// test suite (chaos_test.go) and cmd/experiments -run chaos execute the same
// campaign.
//
// Everything is derived from a single seed: the workload schedule, the crash
// budgets, the device fault times and the corruption offsets, so a failing
// scenario replays bit-identically from its seed.

import (
	"bytes"
	"container/heap"
	"errors"
	"fmt"
	"math/rand"

	"dblayout/internal/core"
	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
	"dblayout/internal/migrate"
	"dblayout/internal/nlp"
	"dblayout/internal/obs"
	"dblayout/internal/rome"
	"dblayout/internal/rubicon"
	"dblayout/internal/seed"
)

// SimIO is a deterministic in-memory migrate.IO: an event heap keyed on
// simulated time, devices with a fixed service rate, and an optional fail
// time per device after which every request to it fails. It is the cheap
// stand-in for replay.BackgroundIO that lets chaos scenarios run thousands of
// controller lifetimes in milliseconds.
type SimIO struct {
	devs    []SimDevice
	queues  []int
	now     float64
	seq     int64
	events  eventHeap
	streams uint64
}

// SimDevice describes one simulated device.
type SimDevice struct {
	Name        string
	Capacity    int64
	BytesPerSec float64 // service rate used for request latencies
	FailAt      float64 // simulated time the device fails; negative = never
}

// NewSimIO builds a SimIO starting at the given simulated time.
func NewSimIO(devs []SimDevice, start float64) *SimIO {
	return &SimIO{devs: devs, queues: make([]int, len(devs)), now: start}
}

type simEvent struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, k int) bool {
	if h[i].at != h[k].at {
		return h[i].at < h[k].at
	}
	return h[i].seq < h[k].seq
}
func (h eventHeap) Swap(i, k int)       { h[i], h[k] = h[k], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Now returns the simulated time.
func (s *SimIO) Now() float64 { return s.now }

// After schedules fn after delay simulated seconds.
func (s *SimIO) After(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.events, simEvent{at: s.now + delay, seq: s.seq, fn: fn})
}

// Devices returns the device count.
func (s *SimIO) Devices() int { return len(s.devs) }

// DeviceName returns device j's name.
func (s *SimIO) DeviceName(j int) string { return s.devs[j].Name }

// Capacity returns device j's capacity in bytes.
func (s *SimIO) Capacity(j int) int64 { return s.devs[j].Capacity }

// QueueDepth returns the outstanding request count on device j.
func (s *SimIO) QueueDepth(j int) int { return s.queues[j] }

// NewStream allocates a stream id.
func (s *SimIO) NewStream() uint64 {
	s.streams++
	return s.streams
}

// Submit models one request: latency is a fixed positioning cost plus the
// transfer time at the device's service rate, and the request fails when the
// device's fail time has passed.
func (s *SimIO) Submit(dev, obj int, stream uint64, off, size int64, write bool, done func(failed bool)) {
	d := s.devs[dev]
	lat := 2e-4
	if d.BytesPerSec > 0 {
		lat += float64(size) / d.BytesPerSec
	}
	failed := d.FailAt >= 0 && s.now >= d.FailAt
	s.queues[dev]++
	s.After(lat, func() {
		s.queues[dev]--
		done(failed)
	})
}

// Advance runs every scheduled event up to now+dt in deterministic order and
// moves the clock there.
func (s *SimIO) Advance(dt float64) {
	end := s.now + dt
	for s.events.Len() > 0 && s.events[0].at <= end {
		ev := heap.Pop(&s.events).(simEvent)
		if ev.at > s.now {
			s.now = ev.at
		}
		ev.fn()
	}
	s.now = end
}

// ChaosScenario is one seeded fault-injection scenario. All fault injection
// is derived deterministically from Seed, so a scenario replays exactly.
type ChaosScenario struct {
	Seed int64
	// CrashEveryRecord kills the controller process after every single
	// journal record — the exhaustive crash-at-every-record schedule.
	// When false, crash points are random (including crash-free sessions).
	CrashEveryRecord bool
	// TornWrites makes crashes leave a torn half-written final line.
	TornWrites bool
	// CorruptTail flips one byte inside the durable journal once, and
	// requires the resume to detect it (ErrControllerCorrupt) rather than
	// act on a corrupt record.
	CorruptTail bool
	// DeviceFault fails one device mid-episode, forcing an abort and the
	// repair path.
	DeviceFault bool
	// DriftBack shifts the workload back right after the first migration
	// completes — drift arriving during cooldown, which must be deferred
	// and then acted on, never acted on early.
	DriftBack bool

	// MaxWindows and MaxSessions bound the scenario (defaults 400, 4000).
	MaxWindows  int64
	MaxSessions int
}

// ChaosReport aggregates what one scenario went through.
type ChaosReport struct {
	Seed                int64 `json:"seed"`
	Sessions            int   `json:"sessions"` // controller lifetimes (1 + crashes survived)
	Crashes             int   `json:"crashes"`
	Windows             int64 `json:"windows"`
	Epochs              int   `json:"epochs"` // completed migration epochs (migrate-done)
	Aborts              int   `json:"aborts"`
	Retries             int   `json:"retries"`
	GiveUps             int   `json:"give_ups"`
	Skips               int   `json:"skips"`
	CorruptionsCaught   int   `json:"corruptions_caught"`
	JournalBytes        int   `json:"journal_bytes"`
	ReachedSteadyState  bool  `json:"steady"`
	DeviceFailed        int   `json:"device_failed"` // -1 when no fault injected
	FinalLayoutIsRepair bool  `json:"final_layout_is_repair"`
}

// chaosRun is the mutable state of one scenario execution.
type chaosRun struct {
	sc   ChaosScenario
	rng  *rand.Rand
	inst *layout.Instance

	steady  *rome.Set
	drifted *rome.Set
	initial *layout.Layout

	utilThreshold float64

	journal   []byte  // full journal bytes, torn tail included
	simNow    float64 // simulated clock, persisted across crashes
	window    int64   // next window to feed
	failDev   int     // device scheduled to fail, -1 when none
	failAt    float64
	corrupted bool // corrupt-tail injection already performed

	driftAt     int64 // window the workload shifts at
	shiftBackAt int64 // window the workload shifts back at, -1 until scheduled

	expectedEpochs int
	steadyTail     int64 // consecutive quiet windows once expectations are met
	stall          int64 // observing windows with pending work and no action

	rep ChaosReport
}

// chaosSets builds the two workload phases: a steady OLTP-ish mix, and a
// drifted one where the cold object becomes the hot scan and the former hot
// tables go quiet — a diurnal OLTP→OLAP shift in miniature.
func chaosSets() (steady, drifted *rome.Set) {
	mk := func(ws ...*rome.Workload) *rome.Set {
		s, err := rome.NewSet(ws...)
		if err != nil {
			panic(err)
		}
		return s
	}
	steady = mk(
		&rome.Workload{Name: "T1", ReadSize: 131072, ReadRate: 300, RunCount: 64, Overlap: []float64{1, 0.9, 0.5, 0.1}},
		&rome.Workload{Name: "T2", ReadSize: 131072, ReadRate: 200, RunCount: 64, Overlap: []float64{0.9, 1, 0.5, 0.1}},
		&rome.Workload{Name: "IX", ReadSize: 8192, ReadRate: 120, WriteSize: 8192, WriteRate: 30, RunCount: 1, Overlap: []float64{0.5, 0.5, 1, 0.1}},
		&rome.Workload{Name: "COLD", ReadSize: 8192, ReadRate: 2, RunCount: 1, Overlap: []float64{0.1, 0.1, 0.1, 1}},
	)
	drifted = mk(
		&rome.Workload{Name: "T1", ReadSize: 131072, ReadRate: 20, RunCount: 64, Overlap: []float64{1, 0.1, 0.1, 0.9}},
		&rome.Workload{Name: "T2", ReadSize: 131072, ReadRate: 10, RunCount: 64, Overlap: []float64{0.1, 1, 0.1, 0.1}},
		&rome.Workload{Name: "IX", ReadSize: 8192, ReadRate: 150, WriteSize: 8192, WriteRate: 40, RunCount: 1, Overlap: []float64{0.1, 0.1, 1, 0.5}},
		&rome.Workload{Name: "COLD", ReadSize: 131072, ReadRate: 350, RunCount: 64, Overlap: []float64{0.9, 0.1, 0.5, 1}},
	)
	return steady, drifted
}

// chaosInstance builds the scenario's layout problem: the four standard test
// objects scaled down to MiB sizes (so migrations complete in simulated
// seconds) on four disk targets.
func chaosInstance(steady *rome.Set) *layout.Instance {
	inst := &layout.Instance{
		Objects: []layout.Object{
			{Name: "T1", Size: 8 << 20, Kind: layout.KindTable},
			{Name: "T2", Size: 8 << 20, Kind: layout.KindTable},
			{Name: "IX", Size: 4 << 20, Kind: layout.KindIndex},
			{Name: "COLD", Size: 4 << 20, Kind: layout.KindTable},
		},
		Targets:   layouttest.Targets(4, 32<<20),
		Workloads: steady,
	}
	if err := inst.Validate(); err != nil {
		panic(err)
	}
	return inst
}

// RunChaosScenario executes one scenario to steady state, checking the
// controller's invariants after every simulated process lifetime:
//
//   - the recovered journal is never corrupt (unless corruption was injected,
//     which must be detected, not acted on);
//   - the recovered layout always passes integrity and capacity checks;
//   - no migration step commits twice and at most one epoch is ever open;
//   - the controller re-reaches steady state within the scenario budget.
//
// The returned error is the first invariant violation (nil on success); the
// report is returned in both cases.
func RunChaosScenario(sc ChaosScenario) (*ChaosReport, error) {
	if sc.MaxWindows <= 0 {
		sc.MaxWindows = 400
	}
	if sc.MaxSessions <= 0 {
		sc.MaxSessions = 4000
	}
	steady, drifted := chaosSets()
	inst := chaosInstance(steady)
	initial, err := layout.InitialLayout(inst)
	if err != nil {
		return nil, fmt.Errorf("chaos: initial layout: %w", err)
	}
	c := &chaosRun{
		sc:      sc,
		rng:     rand.New(rand.NewSource(seed.Sub(sc.Seed, seed.StreamChaos))),
		inst:    inst,
		steady:  steady,
		drifted: drifted,
		initial: initial,
		failDev: -1,
		driftAt: 3, shiftBackAt: -1,
		expectedEpochs: 1,
	}
	c.rep.Seed = sc.Seed
	c.rep.DeviceFailed = -1
	c.calibrate()
	if sc.DriftBack {
		c.expectedEpochs = 2
	}
	if sc.DeviceFault {
		c.failDev = c.rng.Intn(inst.M())
		c.failAt = float64(c.driftAt) + 1 + 3*c.rng.Float64()
		c.rep.DeviceFailed = c.failDev
	}

	for c.rep.Sessions < sc.MaxSessions {
		c.rep.Sessions++
		done, err := c.session()
		if err != nil {
			return &c.rep, fmt.Errorf("chaos: seed %d session %d: %w", sc.Seed, c.rep.Sessions, err)
		}
		if err := c.checkInvariants(); err != nil {
			return &c.rep, fmt.Errorf("chaos: seed %d session %d: invariant: %w", sc.Seed, c.rep.Sessions, err)
		}
		if done {
			c.rep.ReachedSteadyState = true
			c.rep.JournalBytes = len(c.journal)
			return &c.rep, nil
		}
		if c.window >= sc.MaxWindows {
			return &c.rep, fmt.Errorf("chaos: seed %d: no steady state within %d windows (%d sessions, %d epochs of %d expected)",
				sc.Seed, sc.MaxWindows, c.rep.Sessions, c.rep.Epochs, c.expectedEpochs)
		}
	}
	return &c.rep, fmt.Errorf("chaos: seed %d: no steady state within %d sessions", sc.Seed, sc.MaxSessions)
}

// calibrate picks the predicted-utilization threshold between the steady and
// drifted utilization of the starting layout, so the signal stays quiet on
// the steady phase and fires (sustained) on the drifted one.
func (c *chaosRun) calibrate() {
	util := func(set *rome.Set) float64 {
		inst := *c.inst
		inst.Workloads = set
		return layout.NewEvaluator(&inst).MaxUtilization(c.initial)
	}
	uSteady, uDrift := util(c.steady), util(c.drifted)
	if uDrift > uSteady+0.05 {
		c.utilThreshold = uSteady + 0.5*(uDrift-uSteady)
	} else {
		c.utilThreshold = -1 // signal would be noise; overlap carries detection
	}
}

// chaosWriter is the crash-injecting journal sink: after its record budget is
// spent, writes fail — optionally leaving a torn half-line, as a real crash
// mid-write would.
type chaosWriter struct {
	buf       *bytes.Buffer
	remaining int
	torn      bool
}

var errInjectedCrash = errors.New("chaos: injected crash")

func (w *chaosWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		if w.torn && len(p) > 2 {
			w.buf.Write(p[: len(p)/2 : len(p)/2])
		}
		return 0, errInjectedCrash
	}
	w.remaining--
	return w.buf.Write(p)
}

// setFor returns the workload phase window w belongs to.
func (c *chaosRun) setFor(w int64) *rome.Set {
	if w < c.driftAt {
		return c.steady
	}
	if c.shiftBackAt >= 0 && w >= c.shiftBackAt {
		return c.steady
	}
	return c.drifted
}

// fitFor synthesizes the window-w fit: the phase's workload set and the
// overlap distance to the previous window's set. A stalled loop (a detection
// lost to a crash between firing and the cplan record) is unstuck by an
// overlap blip — the workload legitimately keeps changing until acted on.
func (c *chaosRun) fitFor(w int64) rubicon.WindowFit {
	set := c.setFor(w)
	prev := set
	if w > 0 {
		prev = c.setFor(w - 1)
	}
	dist := rubicon.OverlapDistance(prev, set)
	if c.stall >= 10 {
		dist = 0.5
		c.stall = 0
	}
	return rubicon.WindowFit{
		Window: w, Start: float64(w), End: float64(w + 1),
		Set: set, Requests: 1000, OverlapDistance: dist,
	}
}

// config assembles the controller configuration for one session.
func (c *chaosRun) config(sim *SimIO, w *chaosWriter, resume []byte) Config {
	cfg := Config{
		Instance: c.inst,
		IO:       sim,
		Journal:  w,
		Seed:     c.sc.Seed,
		Advisor:  core.Options{NLP: nlp.Options{MaxIters: 400, Restarts: nlp.NoRestarts}},
		Drift:    obs.DriftConfig{Trigger: 1, Clear: 2, MinInterval: 2},

		UtilThreshold:    c.utilThreshold,
		OverlapThreshold: 0.1,
		// The gate floor must exceed per-resolve solver noise: after a
		// repair the utilization signal stays elevated and re-fires at the
		// MinInterval cadence, and each re-advise solves with a fresh seed.
		// A floor below the noise would ratchet marginal migrations forever.
		MinGain:         0.02,
		HorizonSeconds:  1e6,
		CooldownWindows: 3,
		MaxAttempts:     3,

		BaseBackoffWindows: 1,
		MaxBackoffWindows:  4,
		Migration: migrate.Options{
			BytesPerSec:     4 << 20,
			ChunkBytes:      256 << 10,
			CheckpointBytes: 1 << 20,
			MaxQueueShare:   1,
		},
	}
	if len(resume) > 0 {
		cfg.Resume = resume
	} else {
		cfg.Current = c.initial
	}
	return cfg
}

// simDevices builds the session's device table, with the scheduled fault.
func (c *chaosRun) simDevices() []SimDevice {
	caps := c.inst.Capacities()
	devs := make([]SimDevice, c.inst.M())
	for j := range devs {
		devs[j] = SimDevice{
			Name:        c.inst.Targets[j].Name,
			Capacity:    caps[j],
			BytesPerSec: 64 << 20,
			FailAt:      -1,
		}
		if j == c.failDev {
			devs[j].FailAt = c.failAt
		}
	}
	return devs
}

// session runs one controller lifetime: resume (or fresh start), feed windows
// until crash, completion, or the window budget. Returns done=true when the
// scenario reached verified steady state.
func (c *chaosRun) session() (bool, error) {
	durable := TruncateTorn(c.journal)

	// Corruption injection: flip a byte of the durable journal and require
	// the resume to reject it, then carry on with the pristine bytes.
	if c.sc.CorruptTail && !c.corrupted && len(durable) > 40 {
		c.corrupted = true
		bad := append([]byte(nil), durable...)
		bad[c.rng.Intn(len(bad)-1)] ^= 0x5a
		sim := NewSimIO(c.simDevices(), c.simNow)
		w := &chaosWriter{buf: &bytes.Buffer{}, remaining: 1 << 30}
		if _, err := New(c.config(sim, w, bad)); !errors.Is(err, ErrControllerCorrupt) {
			return false, fmt.Errorf("corrupted journal not detected: New returned %v", err)
		}
		c.rep.CorruptionsCaught++
	}

	budget := 1 << 30 // crash-free
	if c.sc.CrashEveryRecord {
		budget = 1
	} else if c.rng.Intn(4) > 0 {
		budget = 1 + c.rng.Intn(40)
	}
	torn := c.sc.TornWrites && c.rng.Intn(2) == 0

	sim := NewSimIO(c.simDevices(), c.simNow)
	w := &chaosWriter{
		buf:       bytes.NewBuffer(append([]byte(nil), durable...)),
		remaining: budget,
		torn:      torn,
	}
	ctrl, err := New(c.config(sim, w, durable))
	if err != nil {
		c.journal = w.buf.Bytes()
		c.simNow = sim.Now()
		if errors.Is(err, ErrControllerCorrupt) {
			return false, fmt.Errorf("journal rejected without injected corruption: %w", err)
		}
		c.rep.Crashes++
		return false, nil
	}
	seen := 0
	seen = c.harvest(ctrl, seen)

	for c.window < c.sc.MaxWindows {
		oerr := ctrl.ObserveFit(c.fitFor(c.window))
		c.window++
		c.rep.Windows = c.window
		sim.Advance(1)
		seen = c.harvest(ctrl, seen)
		if oerr != nil && !errors.Is(oerr, ErrRetriesExhausted) && !ctrl.Crashed() {
			return false, fmt.Errorf("ObserveFit: %v", oerr)
		}
		if ctrl.Crashed() {
			break
		}
		if done := c.observeProgress(ctrl); done {
			c.journal = w.buf.Bytes()
			c.simNow = sim.Now()
			return true, nil
		}
	}
	c.journal = w.buf.Bytes()
	c.simNow = sim.Now()
	if ctrl.Crashed() {
		c.rep.Crashes++
	}
	return false, nil
}

// harvest folds newly recorded controller actions into the report and resets
// the stall/steady counters they affect. Actions that follow a journal write
// are recorded exactly once across crashes; purely informational ones may
// repeat after a crash, which only the informational counters see.
func (c *chaosRun) harvest(ctrl *Controller, seen int) int {
	actions := ctrl.Actions()
	for _, a := range actions[seen:] {
		switch a.Kind {
		case "migrate-done":
			c.rep.Epochs++
			if c.sc.DriftBack && c.shiftBackAt < 0 {
				c.shiftBackAt = c.window + 1
			}
		case "abort":
			c.rep.Aborts++
		case "retry":
			c.rep.Retries++
		case "give-up":
			c.rep.GiveUps++
		case "skip":
			c.rep.Skips++
		}
		switch a.Kind {
		case "resume", "cooldown-end":
		default:
			c.stall = 0
		}
		switch a.Kind {
		case "migrate-start", "abort", "retry", "give-up":
			c.steadyTail = 0
		}
	}
	return len(actions)
}

// observeProgress updates the stall and steady-state trackers after one
// window and reports whether the scenario is verifiably done: expectations
// met and the loop quiet in the observing phase for a full tail of windows.
func (c *chaosRun) observeProgress(ctrl *Controller) bool {
	st := ctrl.Status()
	if st.Phase != PhaseObserving {
		c.stall = 0
		c.steadyTail = 0
		return false
	}
	if c.rep.Epochs < c.expectedEpochs {
		c.stall++
		c.steadyTail = 0
		return false
	}
	c.stall = 0
	c.steadyTail++
	return c.steadyTail >= 8
}

// checkInvariants validates the durable journal after a session: it must
// recover, and the recovered layout must be internally consistent and fit
// device capacities. Structural invariants — at most one open epoch, monotone
// step states, no double commit — are enforced by Recover itself; a violation
// surfaces here as a recovery error on a journal the controller itself wrote.
func (c *chaosRun) checkInvariants() error {
	durable := TruncateTorn(c.journal)
	if len(durable) == 0 {
		return nil
	}
	ck, err := Recover(durable)
	if err != nil {
		return fmt.Errorf("journal the controller wrote does not recover: %w", err)
	}
	if err := ck.Current.CheckIntegrity(); err != nil {
		return fmt.Errorf("recovered layout: %w", err)
	}
	sizes, caps := c.inst.Sizes(), c.inst.Capacities()
	if err := ck.Current.CheckCapacity(sizes, caps); err != nil {
		return fmt.Errorf("recovered layout overflows: %w", err)
	}
	if open := ck.Open; open != nil && open.Checkpoint != nil {
		mid := ck.Current.Clone()
		open.Checkpoint.ApplyCommitted(mid)
		if err := mid.CheckIntegrity(); err != nil {
			return fmt.Errorf("mid-epoch layout: %w", err)
		}
	}
	if len(ck.Failed) > 0 {
		c.rep.FinalLayoutIsRepair = true
	}
	return nil
}

// ChaosCampaignConfig configures a campaign of seeded scenarios.
type ChaosCampaignConfig struct {
	// Scenarios is the number of seeded scenarios (default 50).
	Scenarios int
	// BaseSeed derives every scenario seed (scenario i uses
	// seed.Sub(BaseSeed, seed.StreamChaos, i)).
	BaseSeed int64
}

// ChaosCampaignReport aggregates a campaign.
type ChaosCampaignReport struct {
	Scenarios []ChaosReport `json:"scenarios"`
	Sessions  int           `json:"sessions"`
	Crashes   int           `json:"crashes"`
	Epochs    int           `json:"epochs"`
	Aborts    int           `json:"aborts"`
	GiveUps   int           `json:"give_ups"`
}

// ScenarioFor derives campaign scenario i: the fault dimensions cycle on
// coprime periods so every combination occurs within a long enough campaign.
func (cfg ChaosCampaignConfig) ScenarioFor(i int) ChaosScenario {
	return ChaosScenario{
		Seed:             seed.Sub(cfg.BaseSeed, seed.StreamChaos, int64(i)),
		CrashEveryRecord: i%5 == 4,
		TornWrites:       i%2 == 0,
		CorruptTail:      i%3 == 0,
		DeviceFault:      i%4 == 1 || i%4 == 3,
		DriftBack:        i%4 == 2 || i%4 == 3,
	}
}

// RunChaosCampaign executes the campaign, stopping at the first invariant
// violation. The partial report is returned alongside the error.
func RunChaosCampaign(cfg ChaosCampaignConfig) (*ChaosCampaignReport, error) {
	if cfg.Scenarios <= 0 {
		cfg.Scenarios = 50
	}
	rep := &ChaosCampaignReport{}
	for i := 0; i < cfg.Scenarios; i++ {
		sc := cfg.ScenarioFor(i)
		r, err := RunChaosScenario(sc)
		if r != nil {
			rep.Scenarios = append(rep.Scenarios, *r)
			rep.Sessions += r.Sessions
			rep.Crashes += r.Crashes
			rep.Epochs += r.Epochs
			rep.Aborts += r.Aborts
			rep.GiveUps += r.GiveUps
		}
		if err != nil {
			return rep, fmt.Errorf("chaos campaign: scenario %d (%+v): %w", i, sc, err)
		}
	}
	return rep, nil
}
