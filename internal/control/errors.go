package control

import (
	"errors"
	"fmt"
)

// Sentinel errors. Callers (cmd/advisor) match these with errors.Is to map
// controller outcomes to exit codes.
var (
	// ErrControllerCorrupt reports that a controller journal failed
	// validation (bad frame, malformed record, impossible epoch sequence,
	// or a corrupt embedded migration segment) somewhere other than a torn
	// final line.
	ErrControllerCorrupt = errors.New("controller journal corrupt")

	// ErrRetriesExhausted reports that a drift episode burned through the
	// configured retry budget: every attempt ended in a migration abort or
	// a solve failure. The controller journals the terminal failure and
	// returns to observing after a cooldown; the error surfaces so
	// operators learn the layout is still the pre-episode one.
	ErrRetriesExhausted = errors.New("controller retries exhausted")
)

// CorruptError pinpoints a corrupt controller-journal record. It unwraps to
// ErrControllerCorrupt.
type CorruptError struct {
	Record int // zero-based frame index of the bad record
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("control: journal record %d: %s", e.Record, e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrControllerCorrupt }

// RetryError carries the detail of an exhausted retry chain. It unwraps to
// ErrRetriesExhausted.
type RetryError struct {
	Epoch    int    // the drift episode's last migration epoch (0 when no attempt started one)
	Attempts int    // attempts consumed
	Cause    error  // what the final attempt died of
	Reason   string // classification of the final failure ("abort", "advise", "plan")
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("control: gave up after %d attempts (%s): %v", e.Attempts, e.Reason, e.Cause)
}

func (e *RetryError) Unwrap() error { return ErrRetriesExhausted }
