package server

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
)

// BenchmarkAdviseLoad hammers the advisor with waves of concurrent advise
// requests across several tenants and reports tail latency and throughput —
// this is the load gate behind BENCH_10.json:
//
//	go test -run '^$' -bench AdviseLoad -benchtime 1x ./internal/server/ | benchjson -o BENCH_10.json
//
// Each wave is loadConcurrency requests in flight at once (well past the
// worker pool, so most of what is measured is admission queueing plus the
// advise cache): seeds cycle over a small set, so the first wave pays real
// solves and later requests coalesce per the single-flight cache — the
// intended steady state for a fleet of dashboards polling the same tenants.
// Requests bypass the TCP listener and drive the handler directly; socket
// accept costs are not what this daemon's latency story is about.
func BenchmarkAdviseLoad(b *testing.B) {
	const (
		tenants         = 8
		loadConcurrency = 1024
		seeds           = 8
	)
	s, err := New(Options{
		Workers:         runtime.GOMAXPROCS(0),
		QueueDepth:      2 * loadConcurrency,
		SolveBudget:     10 * time.Second,
		FastCalibration: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	doc := testDoc(b, nil)
	for i := 0; i < tenants; i++ {
		req := httptest.NewRequest("PUT", fmt.Sprintf("/v1/tenants/t%d", i), bytes.NewReader(doc))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != 200 {
			b.Fatalf("tenant upload: %d %s", w.Code, w.Body)
		}
	}

	lat := make([]time.Duration, 0, b.N*loadConcurrency)
	var mu sync.Mutex
	var rejected int

	b.ResetTimer()
	start := time.Now()
	for iter := 0; iter < b.N; iter++ {
		var wg sync.WaitGroup
		for i := 0; i < loadConcurrency; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				body := fmt.Sprintf(`{"seed": %d}`, i%seeds)
				url := fmt.Sprintf("/v1/tenants/t%d/advise", i%tenants)
				req := httptest.NewRequest("POST", url, bytes.NewReader([]byte(body)))
				w := httptest.NewRecorder()
				t0 := time.Now()
				h.ServeHTTP(w, req)
				d := time.Since(t0)
				mu.Lock()
				defer mu.Unlock()
				switch w.Code {
				case 200:
					lat = append(lat, d)
				case 503:
					rejected++
				default:
					b.Errorf("advise: %d %s", w.Code, w.Body)
				}
			}(i)
		}
		wg.Wait()
	}
	elapsed := time.Since(start)
	b.StopTimer()

	if len(lat) == 0 {
		b.Fatal("no advise request succeeded")
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	quantile := func(q float64) time.Duration {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	b.ReportMetric(float64(quantile(0.50))/1e6, "p50-ms")
	b.ReportMetric(float64(quantile(0.99))/1e6, "p99-ms")
	b.ReportMetric(float64(len(lat))/elapsed.Seconds(), "req/s")
	b.ReportMetric(float64(rejected)/float64(b.N), "rejected/wave")
}
