package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"dblayout"
	"dblayout/internal/costmodel"
	"dblayout/internal/layout"
	"dblayout/internal/storage"
)

// docFile is a tenant's problem document, the JSON body of
// PUT /v1/tenants/{id}. It is the advisor CLI's problem-file schema with one
// addition: a target may carry an inline cost model ("model_json", the JSON
// written by cmd/calibrate or SaveModel) instead of a built-in device type,
// which lets a client supply calibrated models without the daemon touching
// the filesystem ("@file" references are rejected for that reason).
type docFile struct {
	Objects []struct {
		Name   string `json:"name"`
		SizeMB int64  `json:"size_mb"`
		Kind   string `json:"kind"`
	} `json:"objects"`
	Targets []struct {
		Name       string          `json:"name"`
		CapacityMB int64           `json:"capacity_mb"`
		Model      string          `json:"model"`
		ModelJSON  json.RawMessage `json:"model_json"`
	} `json:"targets"`
	Workloads *dblayout.WorkloadSet `json:"workloads"`
	// Current optionally gives the layout the tenant's data occupies today
	// (one row of per-target fractions per object, default SEE);
	// migrations start from it.
	Current [][]float64 `json:"current"`
}

// tenantState is one immutable snapshot of a tenant: the problem, the
// current layout, and the version that stamps every answer computed from it.
// Handlers grab the snapshot pointer once and work from it; uploads build a
// fresh state and swap the pointer, so a request admitted before an upload
// completes against the world it started in (snapshot isolation).
type tenantState struct {
	version int64
	problem dblayout.Problem
	current *layout.Layout
	names   []string
	sizes   []int64
	caps    []int64
	raw     []byte // the problem document as uploaded (persisted verbatim)
}

// fitEntry is the cached result of fitting workloads from a trace: the
// digest of the trace bytes and the fitted set. A re-upload of the same
// trace is a cache hit; a workload upload explicitly invalidates the entry.
type fitEntry struct {
	sum [sha256.Size]byte
	set *dblayout.WorkloadSet
}

// adviseKey identifies one advise computation: the state version it ran
// against plus the request parameters that change the answer. Keying on the
// version makes invalidation structural — any upload bumps the version, so
// stale entries can never be returned.
type adviseKey struct {
	version int64
	seed    int64
	budget  time.Duration
	skipReg bool
}

// adviseEntry is a cached (or in-flight) advise result. The first request
// for a key computes; concurrent duplicates block on ready and share the
// result (single-flight), so a thundering herd costs one solve.
type adviseEntry struct {
	ready chan struct{}
	rec   *dblayout.Recommendation
	err   error
}

// tenant is one isolated tenant: its state snapshot, its caches, and its
// migration slot. Each cache has its own lock; none is ever held while
// another tenant's locks are, and the state lock is never held across a
// solve.
type tenant struct {
	id string

	mu      sync.Mutex
	state   *tenantState // nil until the first problem upload
	version int64        // monotonic; stamps each installed state

	modelMu sync.Mutex
	models  map[string]*costmodel.Model // calibration-table cache

	fitMu sync.Mutex
	fit   *fitEntry

	adviseMu sync.Mutex
	advise   map[adviseKey]*adviseEntry

	migMu sync.Mutex
	mig   *migration
	epoch int // migration epochs recorded in this tenant's journal
}

func newTenant(id string) *tenant {
	return &tenant{
		id:     id,
		models: map[string]*costmodel.Model{},
		advise: map[adviseKey]*adviseEntry{},
	}
}

// snapshot returns the current state pointer (nil when no problem has been
// uploaded yet). The returned state is immutable.
func (t *tenant) snapshot() *tenantState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// install swaps in a new state snapshot, stamps it with the next version,
// and drops the advise cache (entries are version-keyed, so this is memory
// hygiene, not correctness).
func (t *tenant) install(st *tenantState) *tenantState {
	t.mu.Lock()
	t.version++
	st.version = t.version
	t.state = st
	t.mu.Unlock()

	t.adviseMu.Lock()
	t.advise = map[adviseKey]*adviseEntry{}
	t.adviseMu.Unlock()
	return st
}

// withLayout clones st with a new current layout — the post-migration state.
func (st *tenantState) withLayout(l *layout.Layout) *tenantState {
	ns := *st
	ns.current = l.Clone()
	return &ns
}

// withWorkloads clones st with a replacement workload set.
func (st *tenantState) withWorkloads(set *dblayout.WorkloadSet) (*tenantState, error) {
	ns := *st
	ns.problem.Workloads = set
	if err := instanceFor(&ns).Validate(); err != nil {
		return nil, err
	}
	return &ns, nil
}

func instanceFor(st *tenantState) *layout.Instance {
	return &layout.Instance{
		Objects:   st.problem.Objects,
		Targets:   st.problem.Targets,
		Workloads: st.problem.Workloads,
	}
}

func kindOf(s string) (dblayout.ObjectKind, error) {
	switch strings.ToLower(s) {
	case "table", "":
		return dblayout.KindTable, nil
	case "index":
		return dblayout.KindIndex, nil
	case "log":
		return dblayout.KindLog, nil
	case "temp":
		return dblayout.KindTemp, nil
	}
	return 0, fmt.Errorf("unknown object kind %q", s)
}

// model resolves a target's cost model. Inline models are decoded from the
// document; built-in device types ("disk15k", "disk7200", "ssd") are
// calibrated once per tenant and cached — calibration runs a storage
// simulation sweep, far too expensive to repeat per request.
func (t *tenant) model(s *Server, ref string, inline json.RawMessage) (*costmodel.Model, error) {
	if len(inline) > 0 {
		m, err := costmodel.Load(bytes.NewReader(inline))
		if err != nil {
			return nil, fmt.Errorf("model_json: %w", err)
		}
		return m, nil
	}
	if strings.HasPrefix(ref, "@") {
		return nil, fmt.Errorf("model %q: @file references are not served; upload the model inline as model_json", ref)
	}
	name := ref
	if name == "" {
		name = "disk15k"
	}
	t.modelMu.Lock()
	defer t.modelMu.Unlock()
	if m, ok := t.models[name]; ok {
		s.mCalHits.Inc()
		return m, nil
	}
	factory, err := calibrationFactory(name)
	if err != nil {
		return nil, err
	}
	grid := costmodel.DefaultGrid()
	if s.opt.FastCalibration {
		grid = costmodel.FastGrid()
	}
	s.mCalibrations.Inc()
	m := costmodel.Calibrate(name, factory, grid)
	t.models[name] = m
	return m, nil
}

func calibrationFactory(name string) (costmodel.TargetFactory, error) {
	switch name {
	case "disk15k":
		return func(e *storage.Engine) storage.Device {
			return storage.NewDisk(e, "disk", storage.Disk15KConfig())
		}, nil
	case "disk7200":
		return func(e *storage.Engine) storage.Device {
			return storage.NewDisk(e, "disk", storage.Disk7200Config())
		}, nil
	case "ssd":
		return func(e *storage.Engine) storage.Device {
			return storage.NewSSD(e, "ssd", storage.SSD32Config())
		}, nil
	}
	return nil, fmt.Errorf("unknown model %q (want disk15k, disk7200, ssd, or model_json)", name)
}

// buildState parses and validates a problem document into a fresh state
// snapshot (unversioned; install stamps it).
func (t *tenant) buildState(s *Server, raw []byte) (*tenantState, error) {
	var doc docFile
	dec := json.NewDecoder(bytes.NewReader(raw))
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("parsing problem document: %w", err)
	}
	if len(doc.Objects) == 0 || len(doc.Targets) == 0 {
		return nil, fmt.Errorf("problem document needs at least one object and one target")
	}
	st := &tenantState{raw: raw}
	for _, o := range doc.Objects {
		kind, err := kindOf(o.Kind)
		if err != nil {
			return nil, err
		}
		if o.SizeMB <= 0 {
			return nil, fmt.Errorf("object %q: size_mb must be positive", o.Name)
		}
		st.problem.Objects = append(st.problem.Objects, dblayout.Object{
			Name: o.Name, Size: o.SizeMB << 20, Kind: kind,
		})
		st.names = append(st.names, o.Name)
		st.sizes = append(st.sizes, o.SizeMB<<20)
	}
	for _, tg := range doc.Targets {
		m, err := t.model(s, tg.Model, tg.ModelJSON)
		if err != nil {
			return nil, fmt.Errorf("target %q: %w", tg.Name, err)
		}
		st.problem.Targets = append(st.problem.Targets, &layout.Target{
			Name: tg.Name, Capacity: tg.CapacityMB << 20, Model: m,
		})
		st.caps = append(st.caps, tg.CapacityMB<<20)
	}
	st.problem.Workloads = doc.Workloads
	if err := instanceFor(st).Validate(); err != nil {
		return nil, err
	}
	cur, err := currentFrom(doc.Current, len(st.names), len(st.caps))
	if err != nil {
		return nil, err
	}
	if err := cur.CheckCapacity(st.sizes, st.caps); err != nil {
		return nil, fmt.Errorf("current layout: %w", err)
	}
	st.current = cur
	return st, nil
}

func currentFrom(rows [][]float64, n, m int) (*layout.Layout, error) {
	if rows == nil {
		return layout.SEE(n, m), nil
	}
	if len(rows) != n {
		return nil, fmt.Errorf("\"current\" has %d rows for %d objects", len(rows), n)
	}
	l := layout.New(n, m)
	for i, row := range rows {
		if len(row) != m {
			return nil, fmt.Errorf("\"current\" row %d has %d fractions for %d targets", i, len(row), m)
		}
		l.SetRow(i, row)
	}
	if err := l.CheckIntegrity(); err != nil {
		return nil, fmt.Errorf("\"current\" layout: %w", err)
	}
	return l, nil
}

// traceDigest identifies uploaded trace content for the fit cache.
func traceDigest(b []byte) [sha256.Size]byte { return sha256.Sum256(b) }

// layoutRows renders a layout as a JSON-friendly fraction matrix.
func layoutRows(l *layout.Layout) [][]float64 {
	rows := make([][]float64, l.N)
	for i := 0; i < l.N; i++ {
		row := make([]float64, l.M)
		for j := 0; j < l.M; j++ {
			row[j] = l.At(i, j)
		}
		rows[i] = row
	}
	return rows
}
