// Package server implements the multi-tenant layout-advisor daemon behind
// cmd/advisord: an HTTP service that holds one isolated problem state per
// tenant and answers advise, repair and migration requests concurrently.
//
// Design points (see DESIGN.md for the full service contract):
//
//   - Snapshot isolation. A tenant's state (problem, workloads, current
//     layout) is an immutable snapshot swapped atomically on upload; a
//     request works entirely from the snapshot it started with.
//   - Caching. Advise results are cached per tenant keyed by state version
//     and request parameters with single-flight deduplication; fitted
//     workloads (rubicon) are cached by trace digest and explicitly
//     invalidated on workload upload; calibration tables are cached per
//     tenant for the life of the tenant's target set.
//   - Admission control. Solver-bound work passes a bounded worker pool
//     with a bounded wait queue; bursts beyond both degrade to 503, not
//     OOM. Each solve runs under the configured SolveBudget.
//   - Durability. Migrations execute against a deterministic simulated I/O
//     substrate and journal to a per-tenant write-ahead file using the
//     controller journal format; a daemon restart recovers every in-flight
//     migration exactly once through control.Recover.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"sync"
	"time"

	"dblayout"
	"dblayout/internal/obs"
)

// Options configures a Server.
type Options struct {
	// DataDir is where per-tenant problem documents and migration
	// journals persist. Empty disables persistence: tenants live in
	// memory only and migration endpoints return 503.
	DataDir string
	// Workers bounds concurrent solver-bound requests (advise, repair,
	// fit). Default: max(1, GOMAXPROCS/2).
	Workers int
	// QueueDepth bounds requests waiting for a worker beyond the pool
	// itself. Default: 4×Workers. Beyond the queue, requests get 503.
	QueueDepth int
	// SolveBudget is the default and maximum per-request solve budget; a
	// request's budget_ms is clamped to it. Default 30s.
	SolveBudget time.Duration
	// FastCalibration selects the reduced calibration grid for built-in
	// device models (recommended for a daemon; full-grid calibration
	// takes minutes per device type).
	FastCalibration bool
	// SimBytesPerSec is the simulated device service rate migrations run
	// against. Default 256 MiB/s.
	SimBytesPerSec float64
	// SimStep is how many simulated seconds each pump tick advances a
	// running migration. Default 50ms of simulated time per tick.
	SimStep float64
	// PumpInterval is the real-time interval between pump ticks.
	// Default 2ms. SimStep/PumpInterval sets the sim-to-real time ratio.
	PumpInterval time.Duration
	// Logger receives request and lifecycle logs (nil disables).
	Logger *slog.Logger
	// Registry receives server_* metrics (nil allocates a private one so
	// /metrics always works).
	Registry *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0) / 2
		if o.Workers < 1 {
			o.Workers = 1
		}
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.SolveBudget <= 0 {
		o.SolveBudget = 30 * time.Second
	}
	if o.SimBytesPerSec <= 0 {
		o.SimBytesPerSec = 256 << 20
	}
	if o.SimStep <= 0 {
		o.SimStep = 0.05
	}
	if o.PumpInterval <= 0 {
		o.PumpInterval = 2 * time.Millisecond
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	return o
}

// Server is the multi-tenant advisor service. Create with New, mount
// Handler on an HTTP server, and Close on shutdown.
type Server struct {
	opt Options
	mux *http.ServeMux
	adm *admission
	reg *obs.Registry
	log *slog.Logger

	ctx    context.Context // lifetime context for shared computations
	cancel context.CancelFunc

	mu      sync.Mutex
	tenants map[string]*tenant
	closed  bool

	wg sync.WaitGroup // migration pump goroutines

	mTenants      *obs.Gauge
	mInflight     *obs.Gauge
	mAdviseHits   *obs.Counter
	mAdviseMisses *obs.Counter
	mFitHits      *obs.Counter
	mFitMisses    *obs.Counter
	mCalHits      *obs.Counter
	mCalibrations *obs.Counter
	mRejected     *obs.Counter
	mRecovered    *obs.Counter
}

var tenantID = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// New builds the server and, when DataDir is set, restores every persisted
// tenant and resumes in-flight migrations from their journals exactly once.
func New(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:     opt,
		adm:     newAdmission(opt.Workers, opt.QueueDepth),
		reg:     opt.Registry,
		log:     opt.Logger,
		ctx:     ctx,
		cancel:  cancel,
		tenants: map[string]*tenant{},
	}
	s.mTenants = s.reg.Gauge("server_tenants")
	s.mInflight = s.reg.Gauge("server_inflight_requests")
	s.mAdviseHits = s.reg.Counter("server_advise_cache_hits_total")
	s.mAdviseMisses = s.reg.Counter("server_advise_cache_misses_total")
	s.mFitHits = s.reg.Counter("server_fit_cache_hits_total")
	s.mFitMisses = s.reg.Counter("server_fit_cache_misses_total")
	s.mCalHits = s.reg.Counter("server_calibration_cache_hits_total")
	s.mCalibrations = s.reg.Counter("server_calibrations_total")
	s.mRejected = s.reg.Counter("server_rejected_total")
	s.mRecovered = s.reg.Counter("server_migrations_recovered_total")

	if opt.DataDir != "" {
		if err := os.MkdirAll(opt.DataDir, 0o755); err != nil {
			cancel()
			return nil, err
		}
		if err := s.restore(); err != nil {
			cancel()
			return nil, err
		}
	}

	mux := http.NewServeMux()
	s.route(mux, "GET /healthz", "healthz", s.handleHealthz)
	s.route(mux, "GET /v1/tenants", "tenants_list", s.handleTenantsList)
	s.route(mux, "PUT /v1/tenants/{id}", "tenant_put", s.handleTenantPut)
	s.route(mux, "GET /v1/tenants/{id}", "tenant_get", s.handleTenantGet)
	s.route(mux, "DELETE /v1/tenants/{id}", "tenant_delete", s.handleTenantDelete)
	s.route(mux, "POST /v1/tenants/{id}/workloads", "workloads", s.handleWorkloads)
	s.route(mux, "POST /v1/tenants/{id}/trace", "trace", s.handleTrace)
	s.route(mux, "POST /v1/tenants/{id}/advise", "advise", s.handleAdvise)
	s.route(mux, "POST /v1/tenants/{id}/repair", "repair", s.handleRepair)
	s.route(mux, "POST /v1/tenants/{id}/migrate", "migrate", s.handleMigrate)
	s.route(mux, "GET /v1/tenants/{id}/migration", "migration", s.handleMigration)
	oh := obs.NewHandler(s.reg)
	mux.Handle("/metrics", oh)
	mux.Handle("/metrics.json", oh)
	mux.Handle("/series", oh)
	mux.Handle("/debug/pprof/", oh)
	s.mux = mux
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the server: new migration starts are refused, running pump
// goroutines abandon their migrations at a journal record boundary (crash
// semantics — the journal resumes them exactly once on the next start), and
// shared solves are cancelled.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) route(mux *http.ServeMux, pattern, name string, h http.HandlerFunc) {
	hist := s.reg.Histogram(obs.Name("server_request_seconds", "handler", name), obs.LatencyBuckets())
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		hist.Observe(time.Since(start).Seconds())
		s.reg.Counter(obs.Name("server_requests_total",
			"handler", name, "code", fmt.Sprint(sw.code))).Inc()
		if s.log != nil {
			s.log.Debug("request", "handler", name, "code", sw.code,
				"elapsed", time.Since(start), "path", r.URL.Path)
		}
	})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// tenantFor fetches (or with create, makes) the tenant for the request's
// {id} path value, writing the error response itself when it returns nil.
func (s *Server) tenantFor(w http.ResponseWriter, r *http.Request, create bool) *tenant {
	id := r.PathValue("id")
	if !tenantID.MatchString(id) {
		writeError(w, http.StatusBadRequest, "invalid tenant id %q", id)
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[id]
	if !ok {
		if !create {
			writeError(w, http.StatusNotFound, "unknown tenant %q", id)
			return nil
		}
		if s.closed {
			writeError(w, http.StatusServiceUnavailable, "server shutting down")
			return nil
		}
		t = newTenant(id)
		s.tenants[id] = t
		s.mTenants.Set(float64(len(s.tenants)))
	}
	return t
}

// snapshotFor resolves the tenant and its state snapshot, handling both
// error responses.
func (s *Server) snapshotFor(w http.ResponseWriter, r *http.Request) (*tenant, *tenantState) {
	t := s.tenantFor(w, r, false)
	if t == nil {
		return nil, nil
	}
	st := t.snapshot()
	if st == nil {
		writeError(w, http.StatusConflict, "tenant %q has no problem document", t.id)
		return nil, nil
	}
	return t, st
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.tenants)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "ok", "tenants": n, "inflight": s.adm.inflight(),
	})
}

func (s *Server) handleTenantsList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	writeJSON(w, http.StatusOK, map[string]interface{}{"tenants": ids})
}

func (s *Server) handleTenantPut(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFor(w, r, true)
	if t == nil {
		return
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	t.migMu.Lock()
	migrating := t.mig != nil && !t.mig.finished
	t.migMu.Unlock()
	if migrating {
		writeError(w, http.StatusConflict, "tenant %q has a migration in flight", t.id)
		return
	}
	st, err := t.buildState(s, raw)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	// A new problem document resets the tenant's world: the fitted-
	// workload cache and the migration journal describe the old one.
	t.fitMu.Lock()
	t.fit = nil
	t.fitMu.Unlock()
	t.migMu.Lock()
	t.mig = nil
	t.epoch = 0
	if s.opt.DataDir != "" {
		_ = os.Remove(s.journalPath(t.id))
	}
	t.migMu.Unlock()
	st = t.install(st)
	if err := s.persistDoc(t.id, raw); err != nil {
		writeError(w, http.StatusInternalServerError, "persisting problem: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"tenant": t.id, "version": st.version,
		"objects": len(st.names), "targets": len(st.caps),
	})
}

func (s *Server) handleTenantGet(w http.ResponseWriter, r *http.Request) {
	t, st := s.snapshotFor(w, r)
	if t == nil {
		return
	}
	t.migMu.Lock()
	epoch := t.epoch
	migrating := t.mig != nil && !t.mig.finished
	t.migMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"tenant": t.id, "version": st.version,
		"objects": st.names, "targets": len(st.caps),
		"current": layoutRows(st.current),
		"epochs":  epoch, "migrating": migrating,
	})
}

func (s *Server) handleTenantDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	t, ok := s.tenants[id]
	if ok {
		delete(s.tenants, id)
		s.mTenants.Set(float64(len(s.tenants)))
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown tenant %q", id)
		return
	}
	t.migMu.Lock()
	if t.mig != nil && !t.mig.finished {
		close(t.mig.stop)
	}
	t.migMu.Unlock()
	if s.opt.DataDir != "" {
		_ = os.Remove(s.docPath(id))
		_ = os.Remove(s.journalPath(id))
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	t, st := s.snapshotFor(w, r)
	if t == nil {
		return
	}
	var body struct {
		Workloads []*dblayout.Workload `json:"workloads"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "parsing workloads: %v", err)
		return
	}
	set, err := dblayout.NewWorkloadSet(body.Workloads...)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	ns, err := st.withWorkloads(set)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	// Explicit invalidation: a direct workload upload supersedes whatever
	// trace the fitted set came from.
	t.fitMu.Lock()
	t.fit = nil
	t.fitMu.Unlock()
	ns = t.install(ns)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"tenant": t.id, "version": ns.version, "workloads": len(body.Workloads),
	})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	t, st := s.snapshotFor(w, r)
	if t == nil {
		return
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading trace: %v", err)
		return
	}
	set, cached, err := s.fitTrace(r.Context(), t, st, raw)
	if err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(err, ErrOverloaded) {
			code = http.StatusServiceUnavailable
		} else if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			code = 499 // client closed request
		}
		writeError(w, code, "%v", err)
		return
	}
	version := st.version
	if !cached || st.problem.Workloads != set {
		ns, err := st.withWorkloads(set)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "fitted workloads: %v", err)
			return
		}
		version = t.install(ns).version
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"tenant": t.id, "version": version, "cached": cached,
		"workloads": len(st.names),
	})
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	t, st := s.snapshotFor(w, r)
	if t == nil {
		return
	}
	var req struct {
		Seed               int64 `json:"seed"`
		BudgetMS           int64 `json:"budget_ms"`
		SkipRegularization bool  `json:"skip_regularization"`
		Utilizations       bool  `json:"utilizations"`
	}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "parsing request: %v", err)
			return
		}
	}
	budget := s.opt.SolveBudget
	if req.BudgetMS > 0 && time.Duration(req.BudgetMS)*time.Millisecond < budget {
		budget = time.Duration(req.BudgetMS) * time.Millisecond
	}
	key := adviseKey{version: st.version, seed: req.Seed, budget: budget, skipReg: req.SkipRegularization}
	start := time.Now()
	rec, cached, err := s.advise(r.Context(), t, st, key)
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, dblayout.ErrInfeasible):
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			writeError(w, 499, "%v", err)
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	resp := map[string]interface{}{
		"tenant": t.id, "version": st.version, "cached": cached,
		"objective":        rec.FinalObjective,
		"solver_objective": rec.SolverObjective,
		"degraded":         rec.Degraded,
		"rows":             layoutRows(rec.Final),
		"elapsed_ms":       float64(time.Since(start)) / float64(time.Millisecond),
	}
	if rec.Degradation != nil {
		resp["degradation"] = rec.Degradation.Error()
	}
	if req.Utilizations {
		if utils, uerr := dblayout.Utilizations(st.problem, rec.Final); uerr == nil {
			resp["utilizations"] = utils
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// advise returns the recommendation for key, computing it at most once per
// key (single-flight) and caching the result for the life of the state
// version.
func (s *Server) advise(ctx context.Context, t *tenant, st *tenantState, key adviseKey) (*dblayout.Recommendation, bool, error) {
	t.adviseMu.Lock()
	if e, ok := t.advise[key]; ok {
		t.adviseMu.Unlock()
		s.mAdviseHits.Inc()
		select {
		case <-e.ready:
			return e.rec, true, e.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	e := &adviseEntry{ready: make(chan struct{})}
	t.advise[key] = e
	t.adviseMu.Unlock()
	s.mAdviseMisses.Inc()

	release, err := s.adm.acquire(ctx)
	if err != nil {
		// Admission failures are per-request conditions, not properties of
		// the key: drop the entry so the next request retries, and fail
		// any concurrent waiters with the same transient error.
		t.adviseMu.Lock()
		delete(t.advise, key)
		t.adviseMu.Unlock()
		e.err = err
		close(e.ready)
		return nil, false, err
	}
	defer release()
	s.mInflight.Set(float64(s.adm.inflight()))

	// Solve under the server's lifetime context, not the initiating
	// request's: the result is shared with concurrent waiters, so one
	// impatient client must not cancel everyone's answer.
	rec, err := dblayout.RecommendContext(s.ctx, st.problem, dblayout.Options{
		Seed:               key.seed,
		SolveBudget:        key.budget,
		SkipRegularization: key.skipReg,
		Workers:            1, // parallelism comes from the pool, not per-solve
		Logger:             s.log,
	})
	if err != nil && rec != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		err = nil // shutdown mid-solve with a usable layout: serve it
	}
	if rec == nil && err == nil {
		err = fmt.Errorf("advisor returned no layout")
	}
	e.rec, e.err = rec, err
	if err != nil && rec != nil {
		e.rec, e.err = nil, err
	}
	close(e.ready)
	return e.rec, false, e.err
}

// fitTrace fits workloads from raw trace bytes, memoized by digest.
func (s *Server) fitTrace(ctx context.Context, t *tenant, st *tenantState, raw []byte) (*dblayout.WorkloadSet, bool, error) {
	sum := traceDigest(raw)
	t.fitMu.Lock()
	if f := t.fit; f != nil && f.sum == sum {
		t.fitMu.Unlock()
		s.mFitHits.Inc()
		return f.set, true, nil
	}
	t.fitMu.Unlock()
	s.mFitMisses.Inc()

	release, err := s.adm.acquire(ctx)
	if err != nil {
		return nil, false, err
	}
	defer release()
	tr, err := dblayout.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		return nil, false, err
	}
	set, err := dblayout.FitWorkloads(tr, st.names, dblayout.FitOptions{ActiveRates: true})
	if err != nil {
		return nil, false, err
	}
	t.fitMu.Lock()
	t.fit = &fitEntry{sum: sum, set: set}
	t.fitMu.Unlock()
	return set, false, nil
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	t, st := s.snapshotFor(w, r)
	if t == nil {
		return
	}
	var req struct {
		Failed []int `json:"failed"`
		Seed   int64 `json:"seed"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	if len(req.Failed) == 0 {
		writeError(w, http.StatusBadRequest, "repair needs at least one failed target")
		return
	}
	for _, j := range req.Failed {
		if j < 0 || j >= len(st.caps) {
			writeError(w, http.StatusBadRequest, "failed target %d outside 0..%d", j, len(st.caps)-1)
			return
		}
	}
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		code := http.StatusServiceUnavailable
		if !errors.Is(err, ErrOverloaded) {
			code = 499
		}
		writeError(w, code, "%v", err)
		return
	}
	defer release()
	rep, err := dblayout.RecommendRepair(s.ctx, st.problem, st.current, req.Failed, dblayout.Options{
		Seed: req.Seed, SolveBudget: s.opt.SolveBudget, Workers: 1, Logger: s.log,
	})
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, dblayout.ErrInfeasible) {
			code = http.StatusUnprocessableEntity
		}
		writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"tenant": t.id, "version": st.version,
		"rows":       layoutRows(rep.Layout),
		"objective":  rep.Objective,
		"failed":     rep.Failed,
		"affected":   rep.Affected,
		"plan_moves": len(rep.Plan),
		"plan_bytes": rep.PlanBytes,
	})
}

func (s *Server) docPath(id string) string {
	return filepath.Join(s.opt.DataDir, id+".problem.json")
}

func (s *Server) journalPath(id string) string {
	return filepath.Join(s.opt.DataDir, id+".journal")
}

// persistDoc atomically writes the tenant's problem document so a restarted
// daemon can rebuild the tenant before replaying its migration journal.
func (s *Server) persistDoc(id string, raw []byte) error {
	if s.opt.DataDir == "" {
		return nil
	}
	tmp := s.docPath(id) + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.docPath(id))
}
