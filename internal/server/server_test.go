package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"dblayout"
	"dblayout/internal/control"
	"dblayout/internal/layouttest"
	"dblayout/internal/migrate"
	"dblayout/internal/storage"
	"dblayout/internal/wal"
)

// testDoc builds a small four-object problem document with inline cost
// models (no calibration) so server tests solve in milliseconds.
func testDoc(t testing.TB, current [][]float64) []byte {
	t.Helper()
	disk, err := json.Marshal(layouttest.DiskModel())
	if err != nil {
		t.Fatal(err)
	}
	ssd, err := json.Marshal(layouttest.SSDModel())
	if err != nil {
		t.Fatal(err)
	}
	doc := map[string]interface{}{
		"objects": []map[string]interface{}{
			{"name": "T1", "size_mb": 8, "kind": "table"},
			{"name": "T2", "size_mb": 8, "kind": "table"},
			{"name": "IX", "size_mb": 8, "kind": "index"},
			{"name": "COLD", "size_mb": 4, "kind": "table"},
		},
		"targets": []map[string]interface{}{
			{"name": "d0", "capacity_mb": 64, "model_json": json.RawMessage(disk)},
			{"name": "d1", "capacity_mb": 64, "model_json": json.RawMessage(disk)},
			{"name": "d2", "capacity_mb": 64, "model_json": json.RawMessage(ssd)},
			{"name": "d3", "capacity_mb": 64, "model_json": json.RawMessage(disk)},
		},
		"workloads": map[string]interface{}{"workloads": []*dblayout.Workload{
			{Name: "T1", ReadSize: 131072, ReadRate: 300, RunCount: 64, Overlap: []float64{1, 0.9, 0.5, 0.1}},
			{Name: "T2", ReadSize: 131072, ReadRate: 200, RunCount: 64, Overlap: []float64{0.9, 1, 0.5, 0.1}},
			{Name: "IX", ReadSize: 8192, ReadRate: 120, WriteSize: 8192, WriteRate: 30, RunCount: 1, Overlap: []float64{0.5, 0.5, 1, 0.1}},
			{Name: "COLD", ReadSize: 8192, ReadRate: 2, RunCount: 1, Overlap: []float64{0.1, 0.1, 0.1, 1}},
		}},
	}
	if current != nil {
		doc["current"] = current
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func newTestServer(t testing.TB, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	h := httptest.NewServer(s.Handler())
	t.Cleanup(func() { h.Close(); s.Close() })
	return s, h
}

func do(t testing.TB, client *http.Client, method, url string, body interface{}) (int, map[string]interface{}) {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else if raw, ok := body.([]byte); ok {
		rd = bytes.NewReader(raw)
	} else {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, out
}

// TestAdviseLifecycle pins the basic flow: upload, advise, cache hit,
// workload upload invalidates, advise recomputes at the new version.
func TestAdviseLifecycle(t *testing.T) {
	s, h := newTestServer(t, Options{})
	client := h.Client()

	code, resp := do(t, client, "PUT", h.URL+"/v1/tenants/acme", testDoc(t, nil))
	if code != http.StatusOK {
		t.Fatalf("PUT tenant: %d %v", code, resp)
	}
	if resp["version"].(float64) != 1 {
		t.Fatalf("first upload version = %v, want 1", resp["version"])
	}

	code, a1 := do(t, client, "POST", h.URL+"/v1/tenants/acme/advise", map[string]interface{}{"seed": 1})
	if code != http.StatusOK {
		t.Fatalf("advise: %d %v", code, a1)
	}
	if a1["cached"].(bool) {
		t.Error("first advise reported cached")
	}
	if obj := a1["objective"].(float64); obj <= 0 || obj > 10 {
		t.Errorf("objective = %v", obj)
	}

	code, a2 := do(t, client, "POST", h.URL+"/v1/tenants/acme/advise", map[string]interface{}{"seed": 1})
	if code != http.StatusOK || !a2["cached"].(bool) {
		t.Fatalf("repeat advise: %d cached=%v", code, a2["cached"])
	}
	if a1["objective"] != a2["objective"] {
		t.Errorf("cached advise objective %v != %v", a2["objective"], a1["objective"])
	}
	if s.mAdviseHits.Value() == 0 || s.mAdviseMisses.Value() == 0 {
		t.Errorf("cache counters hits=%d misses=%d", s.mAdviseHits.Value(), s.mAdviseMisses.Value())
	}

	// Workload upload: new version, advise cache invalidated.
	wl := map[string]interface{}{"workloads": []*dblayout.Workload{
		{Name: "T1", ReadSize: 8192, ReadRate: 5, RunCount: 1},
		{Name: "T2", ReadSize: 8192, ReadRate: 5, RunCount: 1},
		{Name: "IX", ReadSize: 131072, ReadRate: 400, RunCount: 64},
		{Name: "COLD", ReadSize: 8192, ReadRate: 2, RunCount: 1},
	}}
	code, wresp := do(t, client, "POST", h.URL+"/v1/tenants/acme/workloads", wl)
	if code != http.StatusOK {
		t.Fatalf("workloads: %d %v", code, wresp)
	}
	if wresp["version"].(float64) != 2 {
		t.Fatalf("post-upload version = %v, want 2", wresp["version"])
	}
	code, a3 := do(t, client, "POST", h.URL+"/v1/tenants/acme/advise", map[string]interface{}{"seed": 1})
	if code != http.StatusOK {
		t.Fatalf("advise after upload: %d %v", code, a3)
	}
	if a3["cached"].(bool) {
		t.Error("advise after workload upload served the stale cache entry")
	}
	if a3["version"].(float64) != 2 {
		t.Errorf("advise version = %v, want 2", a3["version"])
	}
}

// TestConcurrentAdviseAcrossTenants is the satellite-4 race test: at least
// 64 concurrent advise requests across at least 8 tenants, interleaved with
// workload uploads, exercising snapshot isolation, the per-tenant caches
// and their invalidation, under -race in CI.
func TestConcurrentAdviseAcrossTenants(t *testing.T) {
	s, h := newTestServer(t, Options{Workers: 4, QueueDepth: 256})
	client := h.Client()

	const tenants = 8
	const requests = 96 // > 64 concurrent advises
	for i := 0; i < tenants; i++ {
		code, resp := do(t, client, "PUT", fmt.Sprintf("%s/v1/tenants/t%d", h.URL, i), testDoc(t, nil))
		if code != http.StatusOK {
			t.Fatalf("PUT t%d: %d %v", i, code, resp)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, requests+tenants)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := i % tenants
			code, resp := do(t, client, "POST",
				fmt.Sprintf("%s/v1/tenants/t%d/advise", h.URL, id),
				map[string]interface{}{"seed": int64(i % 3)})
			if code != http.StatusOK {
				errs <- fmt.Sprintf("advise t%d: %d %v", id, code, resp)
				return
			}
			if obj := resp["objective"].(float64); obj <= 0 {
				errs <- fmt.Sprintf("advise t%d: objective %v", id, obj)
			}
		}(i)
	}
	// Concurrent invalidations on half the tenants while advises run.
	for i := 0; i < tenants; i += 2 {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wl := map[string]interface{}{"workloads": []*dblayout.Workload{
				{Name: "T1", ReadSize: 8192, ReadRate: float64(5 + i), RunCount: 1},
				{Name: "T2", ReadSize: 8192, ReadRate: 5, RunCount: 1},
				{Name: "IX", ReadSize: 131072, ReadRate: 400, RunCount: 64},
				{Name: "COLD", ReadSize: 8192, ReadRate: 2, RunCount: 1},
			}}
			code, resp := do(t, client, "POST",
				fmt.Sprintf("%s/v1/tenants/t%d/workloads", h.URL, i), wl)
			if code != http.StatusOK {
				errs <- fmt.Sprintf("workloads t%d: %d %v", i, code, resp)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if s.mAdviseMisses.Value() == 0 {
		t.Error("no advise cache misses recorded")
	}
	if s.mAdviseHits.Value() == 0 {
		t.Error("no advise cache hits recorded across duplicate seeds")
	}
	// Every advised tenant answers from a consistent snapshot afterwards.
	for i := 0; i < tenants; i++ {
		code, resp := do(t, client, "GET", fmt.Sprintf("%s/v1/tenants/t%d", h.URL, i), nil)
		if code != http.StatusOK {
			t.Fatalf("GET t%d: %d %v", i, code, resp)
		}
	}
}

// TestAdmissionOverload pins the burst behavior: beyond the worker pool and
// wait queue, requests are rejected with 503 instead of queueing unboundedly.
func TestAdmissionOverload(t *testing.T) {
	// No queue beyond the pool: a second request is rejected immediately.
	adm := newAdmission(1, 0)
	rel1, err := adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adm.acquire(context.Background()); err != ErrOverloaded {
		t.Fatalf("acquire beyond pool+queue: %v, want ErrOverloaded", err)
	}
	rel1()
	rel2, err := adm.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	rel2()

	// With one queue slot, a second request waits (doesn't fail) and a
	// third is rejected while the queue is occupied.
	adm = newAdmission(1, 1)
	relA, err := adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		relB, err := adm.acquire(context.Background())
		if err == nil {
			relB()
		}
		done <- err
	}()
	deadline := time.After(5 * time.Second)
	for adm.inflight() != 2 { // the waiter holds its queue token
		select {
		case <-deadline:
			t.Fatal("second request never enqueued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if _, err := adm.acquire(context.Background()); err != ErrOverloaded {
		t.Fatalf("acquire with full queue: %v, want ErrOverloaded", err)
	}
	relA()
	if err := <-done; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}
}

// TestTraceFitCache exercises the fitted-workload cache: same trace bytes
// hit, a workload upload explicitly invalidates, the next upload refits.
func TestTraceFitCache(t *testing.T) {
	s, h := newTestServer(t, Options{})
	client := h.Client()
	if code, resp := do(t, client, "PUT", h.URL+"/v1/tenants/acme", testDoc(t, nil)); code != http.StatusOK {
		t.Fatalf("PUT: %d %v", code, resp)
	}

	tr := &storage.Trace{}
	for i := 0; i < 400; i++ {
		tr.Record(storage.TraceRecord{
			Time: float64(i) * 0.01, Object: i % 4, Stream: uint64(i % 3),
			Target: "d0", Offset: int64(i%64) << 12, Size: 8192, Write: i%5 == 0,
		})
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trace := buf.Bytes()

	code, r1 := do(t, client, "POST", h.URL+"/v1/tenants/acme/trace", trace)
	if code != http.StatusOK {
		t.Fatalf("trace: %d %v", code, r1)
	}
	if r1["cached"].(bool) {
		t.Error("first trace upload reported cached")
	}
	code, r2 := do(t, client, "POST", h.URL+"/v1/tenants/acme/trace", trace)
	if code != http.StatusOK || !r2["cached"].(bool) {
		t.Fatalf("repeat trace: %d cached=%v", code, r2["cached"])
	}
	if s.mFitHits.Value() != 1 || s.mFitMisses.Value() != 1 {
		t.Errorf("fit cache hits=%d misses=%d, want 1/1", s.mFitHits.Value(), s.mFitMisses.Value())
	}

	// Explicit invalidation: a workload upload clears the fit cache, so
	// the same trace refits.
	wl := map[string]interface{}{"workloads": []*dblayout.Workload{
		{Name: "T1", ReadSize: 8192, ReadRate: 5, RunCount: 1},
		{Name: "T2", ReadSize: 8192, ReadRate: 5, RunCount: 1},
		{Name: "IX", ReadSize: 8192, ReadRate: 5, RunCount: 1},
		{Name: "COLD", ReadSize: 8192, ReadRate: 2, RunCount: 1},
	}}
	if code, resp := do(t, client, "POST", h.URL+"/v1/tenants/acme/workloads", wl); code != http.StatusOK {
		t.Fatalf("workloads: %d %v", code, resp)
	}
	code, r3 := do(t, client, "POST", h.URL+"/v1/tenants/acme/trace", trace)
	if code != http.StatusOK {
		t.Fatalf("trace after invalidation: %d %v", code, r3)
	}
	if r3["cached"].(bool) {
		t.Error("trace upload after workload upload hit a cache that should have been invalidated")
	}
}

// migrationStatus polls GET /migration.
func migrationStatus(t testing.TB, client *http.Client, url string) map[string]interface{} {
	t.Helper()
	code, resp := do(t, client, "GET", url+"/migration", nil)
	if code != http.StatusOK {
		t.Fatalf("migration status: %d %v", code, resp)
	}
	return resp
}

// TestDaemonRestartResumesMigrationExactlyOnce is the satellite-4 restart
// test: a migration started through the API is killed mid-flight by closing
// the server (pump abandoned at a record boundary, like a crash), a new
// server over the same data directory resumes it from the journal, and the
// journal afterwards shows every step committed exactly once with no bytes
// lost or double-counted.
func TestDaemonRestartResumesMigrationExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	opt := Options{
		DataDir:        dir,
		SimBytesPerSec: 64 << 20,
		SimStep:        0.01,
		PumpInterval:   time.Millisecond,
	}
	s1, h1 := newTestServer(t, opt)
	client := h1.Client()
	base := h1.URL + "/v1/tenants/acme"

	// Everything on d0; the target spreads the three big objects out.
	current := [][]float64{{1, 0, 0, 0}, {1, 0, 0, 0}, {1, 0, 0, 0}, {1, 0, 0, 0}}
	target := [][]float64{{0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}, {1, 0, 0, 0}}
	if code, resp := do(t, client, "PUT", base, testDoc(t, current)); code != http.StatusOK {
		t.Fatalf("PUT: %d %v", code, resp)
	}
	code, resp := do(t, client, "POST", base+"/migrate", map[string]interface{}{
		"target":           target,
		"bytes_per_sec":    2 << 20, // ~12 simulated seconds of copying
		"chunk_bytes":      128 << 10,
		"checkpoint_bytes": 512 << 10,
		"sync_every":       4,
	})
	if code != http.StatusOK || resp["started"] != true {
		t.Fatalf("migrate: %d %v", code, resp)
	}
	totalBytes := int64(resp["bytes"].(float64))
	steps := int(resp["moves"].(float64))
	if steps < 3 {
		t.Fatalf("script has %d steps, want >= 3", steps)
	}

	// Wait until the migration is genuinely mid-flight: at least one step
	// committed, at least one still pending.
	deadline := time.After(30 * time.Second)
	for {
		st := migrationStatus(t, client, base)
		committed := int(st["committed_steps"].(float64))
		if st["active"].(bool) && committed >= 1 && committed < steps {
			break
		}
		if st["done"] == true {
			t.Fatal("migration finished before the kill; lower bytes_per_sec")
		}
		select {
		case <-deadline:
			t.Fatalf("migration never reached mid-flight: %v", st)
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Kill the daemon: the pump stops between records, the journal stays.
	h1.Close()
	s1.Close()
	crashStatus := readJournalCommits(t, dir+"/acme.journal")
	if crashStatus.done {
		t.Fatal("journal already records done at the kill point")
	}

	// Restart over the same data directory: the tenant is restored from
	// its document and the migration resumes from the journal.
	s2, h2 := newTestServer(t, opt)
	client2 := h2.Client()
	base2 := h2.URL + "/v1/tenants/acme"
	if s2.mRecovered.Value() != 1 {
		t.Fatalf("recovered migrations = %d, want 1", s2.mRecovered.Value())
	}
	deadline = time.After(60 * time.Second)
	for {
		st := migrationStatus(t, client2, base2)
		if st["recovered"] != true {
			t.Fatalf("status does not mark the migration recovered: %v", st)
		}
		if st["done"] == true {
			if got := int64(st["committed_bytes"].(float64)); got != totalBytes {
				t.Fatalf("committed_bytes = %d, want %d", got, totalBytes)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("resumed migration never finished: %v", st)
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Exactly-once, proven from the journal itself: every step has exactly
	// one committed record across both daemon lifetimes.
	final := readJournalCommits(t, dir+"/acme.journal")
	if !final.done {
		t.Fatal("journal does not record the migration done")
	}
	if len(final.commits) != steps {
		t.Fatalf("journal commits %d steps, script has %d", len(final.commits), steps)
	}
	for step, n := range final.commits {
		if n != 1 {
			t.Errorf("step %d committed %d times, want exactly once", step, n)
		}
	}
	if final.outcomes != 1 {
		t.Errorf("journal has %d coutcome records, want 1", final.outcomes)
	}

	// The recovered current layout matches the migration target.
	code, info := do(t, client2, "GET", base2, nil)
	if code != http.StatusOK {
		t.Fatalf("GET tenant: %d %v", code, info)
	}
	rows := info["current"].([]interface{})
	for i, want := range target {
		row := rows[i].([]interface{})
		for j := range want {
			if got := row[j].(float64); got != want[j] {
				t.Fatalf("current[%d][%d] = %v, want %v", i, j, got, want[j])
			}
		}
	}
	// And a full recovery of the journal agrees.
	data, err := os.ReadFile(dir + "/acme.journal")
	if err != nil {
		t.Fatal(err)
	}
	ck, err := control.Recover(control.TruncateTorn(data))
	if err != nil {
		t.Fatalf("final journal does not recover: %v", err)
	}
	if ck.Open != nil {
		t.Error("final journal leaves an epoch open")
	}
	_ = crashStatus
}

type journalCommits struct {
	commits  map[int]int
	done     bool
	outcomes int
}

// readJournalCommits decodes a tenant journal and counts, per step, how many
// committed-state records it holds — the exactly-once ledger.
func readJournalCommits(t testing.TB, path string) journalCommits {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := wal.Frames(wal.TruncateTorn(data))
	if err != nil {
		t.Fatalf("journal frames: %v", err)
	}
	out := journalCommits{commits: map[int]int{}}
	for _, body := range frames {
		var tag struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(body, &tag); err != nil {
			t.Fatalf("journal frame: %v", err)
		}
		if strings.HasPrefix(tag.T, "c") {
			rec, err := control.DecodeRecordBody(body)
			if err != nil {
				t.Fatalf("control record: %v", err)
			}
			if rec.T == "coutcome" {
				out.outcomes++
				if rec.Outcome == "done" {
					out.done = true
				}
			}
			continue
		}
		rec, err := migrate.DecodeRecordBody(body)
		if err != nil {
			t.Fatalf("migrate record: %v", err)
		}
		if rec.T == "state" && rec.State == migrate.StateCommitted.String() {
			out.commits[rec.Step]++
		}
	}
	return out
}

// TestMigrateConflictAndNoData pins two guard rails: migrations need a data
// directory, and a tenant can only run one migration at a time.
func TestMigrateConflictAndNoData(t *testing.T) {
	_, h := newTestServer(t, Options{}) // no DataDir
	client := h.Client()
	if code, resp := do(t, client, "PUT", h.URL+"/v1/tenants/acme", testDoc(t, nil)); code != http.StatusOK {
		t.Fatalf("PUT: %d %v", code, resp)
	}
	code, _ := do(t, client, "POST", h.URL+"/v1/tenants/acme/migrate", map[string]interface{}{})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("migrate without -data: %d, want 503", code)
	}

	dir := t.TempDir()
	_, h2 := newTestServer(t, Options{DataDir: dir, SimStep: 0.001, PumpInterval: time.Millisecond})
	client2 := h2.Client()
	base := h2.URL + "/v1/tenants/acme"
	current := [][]float64{{1, 0, 0, 0}, {1, 0, 0, 0}, {1, 0, 0, 0}, {1, 0, 0, 0}}
	target := [][]float64{{0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}, {1, 0, 0, 0}}
	if code, resp := do(t, client2, "PUT", base, testDoc(t, current)); code != http.StatusOK {
		t.Fatalf("PUT: %d %v", code, resp)
	}
	code, resp := do(t, client2, "POST", base+"/migrate", map[string]interface{}{
		"target": target, "bytes_per_sec": 1 << 20,
	})
	if code != http.StatusOK {
		t.Fatalf("migrate: %d %v", code, resp)
	}
	code, _ = do(t, client2, "POST", base+"/migrate", map[string]interface{}{"target": target})
	if code != http.StatusConflict {
		t.Fatalf("second migrate: %d, want 409", code)
	}
	// A problem re-upload during a migration is refused too.
	code, _ = do(t, client2, "PUT", base, testDoc(t, current))
	if code != http.StatusConflict {
		t.Fatalf("PUT during migration: %d, want 409", code)
	}
}

// TestRestartWithoutJournal pins that restore rebuilds tenants from their
// documents alone.
func TestRestartWithoutJournal(t *testing.T) {
	dir := t.TempDir()
	_, h := newTestServer(t, Options{DataDir: dir})
	client := h.Client()
	if code, resp := do(t, client, "PUT", h.URL+"/v1/tenants/acme", testDoc(t, nil)); code != http.StatusOK {
		t.Fatalf("PUT: %d %v", code, resp)
	}
	h.Close()

	_, h2 := newTestServer(t, Options{DataDir: dir})
	code, resp := do(t, h2.Client(), "GET", h2.URL+"/v1/tenants/acme", nil)
	if code != http.StatusOK {
		t.Fatalf("restored tenant GET: %d %v", code, resp)
	}
	if objs := resp["objects"].([]interface{}); len(objs) != 4 {
		t.Fatalf("restored objects = %v", objs)
	}
}
