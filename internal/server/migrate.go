package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dblayout"
	"dblayout/internal/control"
	"dblayout/internal/layout"
	"dblayout/internal/migrate"
	"dblayout/internal/wal"
)

// Migrations run against a deterministic simulated I/O substrate
// (control.SimIO) and journal to a per-tenant write-ahead file in the
// controller journal format: a cbegin record fixes the base layout, each
// migration opens an epoch with cplan, the engine's own records interleave
// while the epoch is open, and a coutcome closes it. A daemon restart
// replays the file through control.Recover and resumes the open epoch's
// engine from its checkpoint — the engine's journal-before-transition
// protocol makes the resume exactly-once (no step commits twice, no
// committed byte is lost or double-counted).
//
// A pump goroutine per running migration advances the simulation in small
// slices on a real-time tick, so migrations are genuinely in flight from
// the API's point of view: status polls observe intermediate progress, and
// killing the daemon mid-flight leaves a journal that ends at an arbitrary
// record boundary, exactly like a crash.

// migration is one tenant's in-flight (or just-finished) migration.
type migration struct {
	epoch    int
	steps    []migrate.Step
	engine   *migrate.Engine
	sim      *control.SimIO
	file     *os.File
	stop     chan struct{} // closed to abandon the pump (crash semantics)
	res      *migrate.Result
	finished bool
	err      string
	// recovered marks a migration resumed from the journal at startup.
	recovered bool
}

// migrateRequest tunes one migration run.
type migrateRequest struct {
	// Target is the destination layout (fraction rows). Absent, the
	// daemon advises first (through the cache) and migrates to the
	// recommendation.
	Target [][]float64 `json:"target"`
	Seed   int64       `json:"seed"`
	// BytesPerSec throttles the copy stream (simulated bytes/second;
	// 0 = unthrottled).
	BytesPerSec float64 `json:"bytes_per_sec"`
	ChunkBytes  int64   `json:"chunk_bytes"`
	// CheckpointBytes is the progress-journaling granularity.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	// SyncEvery batches progress-record fsyncs (see migrate.Options).
	SyncEvery int `json:"sync_every"`
}

func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	if s.opt.DataDir == "" {
		writeError(w, http.StatusServiceUnavailable, "migrations need a data directory (-data)")
		return
	}
	t, st := s.snapshotFor(w, r)
	if t == nil {
		return
	}
	var req migrateRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 4<<20)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "parsing request: %v", err)
			return
		}
	}

	var target *layout.Layout
	if req.Target != nil {
		l, err := currentFrom(req.Target, len(st.names), len(st.caps))
		if err != nil {
			writeError(w, http.StatusBadRequest, "target layout: %v", err)
			return
		}
		if err := l.CheckCapacity(st.sizes, st.caps); err != nil {
			writeError(w, http.StatusUnprocessableEntity, "target layout: %v", err)
			return
		}
		target = l
	} else {
		key := adviseKey{version: st.version, seed: req.Seed, budget: s.opt.SolveBudget}
		rec, _, err := s.advise(r.Context(), t, st, key)
		if err != nil {
			code := http.StatusInternalServerError
			if errors.Is(err, ErrOverloaded) {
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, "advising for migration: %v", err)
			return
		}
		target = rec.Final
	}

	plan, err := dblayout.MigrationPlan(st.problem, st.current, target)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "planning: %v", err)
		return
	}
	if len(plan) == 0 {
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"tenant": t.id, "version": st.version, "moves": 0, "started": false,
		})
		return
	}
	scratch := migrate.AutoScratch(st.current, target, st.sizes, st.caps)
	steps, err := migrate.BuildScript(st.current, plan, st.sizes, st.caps, scratch)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "building script: %v", err)
		return
	}

	t.migMu.Lock()
	defer t.migMu.Unlock()
	if t.mig != nil && !t.mig.finished {
		writeError(w, http.StatusConflict, "tenant %q already has a migration in flight", t.id)
		return
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	mig, err := s.startMigration(t, st, steps, scratch, req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "starting migration: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"tenant": t.id, "version": st.version, "started": true,
		"epoch": mig.epoch, "moves": len(steps),
		"bytes": migrate.ScriptBytes(steps),
	})
}

// startMigration opens (or extends) the tenant journal, journals the cplan,
// builds the engine and launches the pump. Caller holds t.migMu.
func (s *Server) startMigration(t *tenant, st *tenantState, steps []migrate.Step, scratch migrate.ScratchSpec, req migrateRequest) (*migration, error) {
	path := s.journalPath(t.id)
	fresh := false
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		fresh = true
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if fresh {
		// cbegin pins the journal's base layout: the current layout at
		// journal creation. Every later epoch migrates from base plus the
		// committed steps of the closed epochs before it.
		if err := appendControl(f, control.Record{
			T: "cbegin", N: len(st.names), M: len(st.caps),
			Rows: layoutRows(st.current), Seed: req.Seed,
		}); err != nil {
			f.Close()
			return nil, err
		}
	}
	epoch := t.epoch + 1
	if err := appendControl(f, control.Record{
		T: "cplan", Epoch: epoch, Attempt: 1,
		Steps: steps, Scratch: &scratch, Reason: "api",
	}); err != nil {
		f.Close()
		return nil, err
	}

	mig := &migration{
		epoch: epoch,
		steps: steps,
		sim:   control.NewSimIO(s.simDevices(st), 0),
		file:  f,
		stop:  make(chan struct{}),
	}
	engine, err := migrate.NewEngine(mig.sim, st.current, steps, s.migrateOptions(f, req), func(r *migrate.Result) {
		mig.res = r
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	mig.engine = engine
	t.mig = mig
	engine.Start()
	s.wg.Add(1)
	go s.pump(t, mig)
	return mig, nil
}

func (s *Server) migrateOptions(journal io.Writer, req migrateRequest) migrate.Options {
	opt := migrate.Options{
		BytesPerSec:     req.BytesPerSec,
		ChunkBytes:      req.ChunkBytes,
		CheckpointBytes: req.CheckpointBytes,
		SyncEvery:       req.SyncEvery,
		MaxQueueShare:   1, // no foreground I/O in the daemon's simulation
		Journal:         journal,
	}
	if opt.SyncEvery == 0 {
		opt.SyncEvery = 8
	}
	return opt
}

// simDevices builds the simulated device table for a tenant's targets.
func (s *Server) simDevices(st *tenantState) []control.SimDevice {
	devs := make([]control.SimDevice, len(st.caps))
	for j := range devs {
		devs[j] = control.SimDevice{
			Name:        st.problem.Targets[j].Name,
			Capacity:    st.caps[j],
			BytesPerSec: s.opt.SimBytesPerSec,
			FailAt:      -1,
		}
	}
	return devs
}

// pump advances one migration's simulated clock on a real-time tick until
// the engine finishes or the server shuts down. Abandoning mid-flight is
// deliberate crash semantics: the journal ends at a record boundary and the
// next daemon start resumes from it.
func (s *Server) pump(t *tenant, mig *migration) {
	defer s.wg.Done()
	for {
		select {
		case <-mig.stop:
			mig.file.Close()
			return
		case <-s.ctx.Done():
			mig.file.Close()
			return
		default:
		}
		t.migMu.Lock()
		if mig.res == nil {
			mig.sim.Advance(s.opt.SimStep)
		}
		done := mig.res != nil
		if done {
			s.finalizeMigration(t, mig)
		}
		t.migMu.Unlock()
		if done {
			if mig.res.Layout != nil {
				s.installLayout(t, mig.res.Layout)
			}
			return
		}
		time.Sleep(s.opt.PumpInterval)
	}
}

// finalizeMigration closes the epoch in the journal and the file. Caller
// holds t.migMu.
func (s *Server) finalizeMigration(t *tenant, mig *migration) {
	res := mig.res
	switch {
	case res.Done:
		if err := appendControl(mig.file, control.Record{
			T: "coutcome", Epoch: mig.epoch, Outcome: "done",
		}); err != nil {
			mig.err = fmt.Sprintf("closing epoch: %v", err)
		}
	case res.Aborted:
		// The daemon does not auto-retry: the abort is recorded terminal
		// (coutcome aborted + cfail) and clients replan via /repair.
		if err := appendControl(mig.file, control.Record{
			T: "coutcome", Epoch: mig.epoch, Outcome: "aborted", Failed: res.FailedTargets,
		}); err != nil {
			mig.err = fmt.Sprintf("closing epoch: %v", err)
		} else if err := appendControl(mig.file, control.Record{
			T: "cfail", Cause: "api migration aborted; replan via /repair",
		}); err != nil {
			mig.err = fmt.Sprintf("closing epoch: %v", err)
		}
	case res.Crashed:
		mig.err = fmt.Sprintf("journal write failed: %v", res.Err)
	}
	if res.Err != nil && mig.err == "" {
		mig.err = res.Err.Error()
	}
	mig.file.Close()
	mig.finished = true
	t.epoch = mig.epoch
	if s.log != nil {
		s.log.Info("migration finished", "tenant", t.id, "epoch", mig.epoch,
			"done", res.Done, "aborted", res.Aborted, "committed_bytes", res.CommittedBytes)
	}
}

// installLayout swaps the tenant's state to one whose current layout is the
// migration result. Takes t.mu (never while holding t.migMu).
func (s *Server) installLayout(t *tenant, l *layout.Layout) {
	st := t.snapshot()
	if st == nil {
		return
	}
	t.install(st.withLayout(l))
}

func (s *Server) handleMigration(w http.ResponseWriter, r *http.Request) {
	t, st := s.snapshotFor(w, r)
	if t == nil {
		return
	}
	t.migMu.Lock()
	defer t.migMu.Unlock()
	if t.mig == nil {
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"tenant": t.id, "version": st.version, "active": false, "epochs": t.epoch,
		})
		return
	}
	mig := t.mig
	res := mig.engine.Result()
	total := migrate.ScriptBytes(mig.steps)
	resp := map[string]interface{}{
		"tenant": t.id, "version": st.version,
		"active":          !mig.finished,
		"epoch":           mig.epoch,
		"epochs":          t.epoch,
		"recovered":       mig.recovered,
		"steps":           len(mig.steps),
		"committed_steps": res.Committed,
		"committed_bytes": res.CommittedBytes,
		"total_bytes":     total,
		"done":            res.Done,
		"aborted":         res.Aborted,
	}
	if mig.err != "" {
		resp["error"] = mig.err
	}
	writeJSON(w, http.StatusOK, resp)
}

// appendControl journals one controller record, CRC-framed and fsynced —
// every controller record is a commit point.
func appendControl(w io.Writer, rec control.Record) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := wal.Append(w, body); err != nil {
		return err
	}
	return wal.Sync(w)
}

// restore rebuilds every persisted tenant and resumes in-flight migrations
// from their journals. Called from New before the server accepts requests.
func (s *Server) restore() error {
	entries, err := os.ReadDir(s.opt.DataDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".problem.json") {
			continue
		}
		id := strings.TrimSuffix(name, ".problem.json")
		if !tenantID.MatchString(id) {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(s.opt.DataDir, name))
		if err != nil {
			return fmt.Errorf("tenant %s: %w", id, err)
		}
		t := newTenant(id)
		st, err := t.buildState(s, raw)
		if err != nil {
			if s.log != nil {
				s.log.Warn("skipping unloadable tenant", "tenant", id, "err", err)
			}
			continue
		}
		st = t.install(st)
		s.tenants[id] = t
		if err := s.recoverJournal(t, st); err != nil {
			return fmt.Errorf("tenant %s: %w", id, err)
		}
	}
	s.mTenants.Set(float64(len(s.tenants)))
	return nil
}

// recoverJournal replays a tenant's migration journal: closed epochs roll
// the current layout forward; an open epoch resumes its engine from the
// recovered checkpoint, exactly once.
func (s *Server) recoverJournal(t *tenant, st *tenantState) error {
	path := s.journalPath(t.id)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	durable := control.TruncateTorn(data)
	if len(durable) == 0 {
		return os.Remove(path)
	}
	ck, err := control.Recover(durable)
	if err != nil {
		// A journal the daemon cannot trust is quarantined, not appended
		// to: the tenant restarts from its problem document's layout.
		if s.log != nil {
			s.log.Warn("quarantining corrupt journal", "tenant", t.id, "err", err)
		}
		return os.Rename(path, path+".corrupt")
	}
	// Drop the torn tail from the file itself so appended records follow
	// the last durable one.
	if len(durable) != len(data) {
		if err := os.Truncate(path, int64(len(durable))); err != nil {
			return err
		}
	}
	t.migMu.Lock()
	defer t.migMu.Unlock()
	t.epoch = ck.Epoch
	current := ck.Current.Clone()

	if ck.Open == nil {
		if ck.NeedRetryDecision {
			// The crash landed between the aborted outcome and its retry
			// decision; record the terminal decision now (the daemon never
			// auto-retries), keeping the journal grammar appendable.
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			err = appendControl(f, control.Record{T: "cfail", Cause: "abort recovered at restart; replan via /repair"})
			f.Close()
			if err != nil {
				return err
			}
		}
		s.installRecovered(t, st, current)
		return nil
	}

	open := ck.Open
	mck := open.Checkpoint
	if mck != nil && (mck.Done || mck.Aborted) {
		// The engine finished but the crash swallowed the coutcome: close
		// the epoch without re-running anything.
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		outcome := "done"
		if mck.Aborted {
			outcome = "aborted"
		}
		err = appendControl(f, control.Record{
			T: "coutcome", Epoch: open.Plan.Epoch, Outcome: outcome, Failed: mck.Failed,
		})
		if err == nil && mck.Aborted {
			err = appendControl(f, control.Record{T: "cfail", Cause: "abort recovered at restart; replan via /repair"})
		}
		f.Close()
		if err != nil {
			return err
		}
		mck.ApplyCommitted(current)
		t.epoch = open.Plan.Epoch
		s.installRecovered(t, st, current)
		return nil
	}

	// A genuinely in-flight epoch: resume its engine from the checkpoint
	// and pump it to completion. NewEngine re-applies committed steps from
	// the checkpoint itself, so `current` (base of the open epoch) is the
	// right base layout.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	mig := &migration{
		epoch:     open.Plan.Epoch,
		steps:     open.Plan.Steps,
		sim:       control.NewSimIO(s.simDevices(st), 0),
		file:      f,
		stop:      make(chan struct{}),
		recovered: true,
	}
	opt := s.migrateOptions(f, migrateRequest{})
	opt.Checkpoint = mck
	if open.Plan.Scratch != nil {
		opt.Scratch = *open.Plan.Scratch
	}
	engine, err := migrate.NewEngine(mig.sim, current, open.Plan.Steps, opt, func(r *migrate.Result) {
		mig.res = r
	})
	if err != nil {
		f.Close()
		return fmt.Errorf("resuming epoch %d: %w", open.Plan.Epoch, err)
	}
	mig.engine = engine
	t.mig = mig
	t.epoch = open.Plan.Epoch - 1 // finalize sets it to the epoch on close
	s.installRecovered(t, st, current)
	s.mRecovered.Inc()
	if s.log != nil {
		s.log.Info("resuming migration", "tenant", t.id, "epoch", open.Plan.Epoch,
			"committed_steps", engine.Result().Committed)
	}
	engine.Start()
	s.wg.Add(1)
	go s.pump(t, mig)
	return nil
}

// installRecovered swaps in the journal-recovered current layout when it
// differs from the document's.
func (s *Server) installRecovered(t *tenant, st *tenantState, current *layout.Layout) {
	if layoutsEqual(st.current, current) {
		return
	}
	t.install(st.withLayout(current))
}

func layoutsEqual(a, b *layout.Layout) bool {
	if a.N != b.N || a.M != b.M {
		return false
	}
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.M; j++ {
			if a.At(i, j) != b.At(i, j) {
				return false
			}
		}
	}
	return true
}
