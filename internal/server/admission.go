package server

import (
	"context"
	"errors"
)

// ErrOverloaded reports that the daemon's wait queue is full: the request
// was rejected at admission rather than allowed to pile onto the solver
// pool. Clients should back off and retry (HTTP 503).
var ErrOverloaded = errors.New("server: overloaded, wait queue full")

// admission is the daemon's two-stage admission controller for solver-bound
// work (advise, repair, workload fitting). A bounded worker pool caps how
// many solves run concurrently, and a bounded wait queue caps how many
// admitted requests may be waiting for a worker. A burst beyond both bounds
// degrades to an immediate ErrOverloaded instead of unbounded goroutine and
// memory growth — the daemon queues, it does not OOM.
type admission struct {
	slots chan struct{} // one token per running solve
	queue chan struct{} // one token per admitted (queued or running) request
}

func newAdmission(workers, depth int) *admission {
	return &admission{
		slots: make(chan struct{}, workers),
		queue: make(chan struct{}, workers+depth),
	}
}

// acquire admits the request and blocks until a worker slot is free (or ctx
// is done). It returns a release function exactly when err is nil.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.queue <- struct{}{}:
	default:
		return nil, ErrOverloaded
	}
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots; <-a.queue }, nil
	case <-ctx.Done():
		<-a.queue
		return nil, ctx.Err()
	}
}

// inflight reports the number of admitted requests (running + queued).
func (a *admission) inflight() int { return len(a.queue) }
