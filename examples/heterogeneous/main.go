// Heterogeneous: reproduce the paper's Sec. 6.4 scenario end-to-end on the
// simulated testbed — a TPC-H OLAP workload on a mix of a RAID0 group, a
// single disk, and an SSD — comparing stripe-everything-everywhere against
// the advisor's recommendation by actually replaying the workload.
package main

import (
	"fmt"
	"log"

	"dblayout/internal/benchdb"
	"dblayout/internal/costmodel"
	"dblayout/internal/layout"
	"dblayout/internal/replay"
	"dblayout/internal/rubicon"
)

func main() {
	// The system under test: a 2-disk RAID0 group, one standalone 15K
	// disk, and a 16 GB SSD — the kind of accumulated heterogeneity the
	// paper's introduction motivates.
	w := benchdb.OLAP863()
	w.Queries = w.Queries[:21] // one pass over the query set keeps this quick
	sys := &replay.System{
		Objects: w.Catalog.Objects,
		Devices: []replay.DeviceSpec{
			replay.RAID0Disks("raid0x2", 2),
			replay.Disk15K("disk"),
			replay.SSD("ssd", 16<<30),
		},
	}

	// Step 1: run the workload under SEE, fitting workload models online
	// from the block trace (the paper's methodology).
	fmt.Println("replaying OLAP workload under SEE and fitting workload models...")
	see := layout.SEE(len(sys.Objects), len(sys.Devices))
	fitter := rubicon.NewFitter(objectNames(sys), rubicon.Options{ActiveRates: true})
	seeRes, err := replay.RunOLAP(sys, see, w, replay.Options{Seed: 1, Tracer: fitter})
	if err != nil {
		log.Fatal(err)
	}
	workloads, err := fitter.Fit()
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: calibrate cost models per target type and advise.
	fmt.Println("calibrating target models and running the advisor...")
	cache := costmodel.NewCache()
	inst := &layout.Instance{
		Objects:   sys.Objects,
		Targets:   sys.Targets(cache, costmodel.FastGrid()),
		Workloads: workloads,
	}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}
	rec, err := adviseMultiStart(inst)
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: replay under the recommended layout.
	optRes, err := replay.RunOLAP(sys, rec.Final, w, replay.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nSEE:       %7.0f s elapsed\n", seeRes.Elapsed)
	fmt.Printf("optimized: %7.0f s elapsed (%.2fx speedup)\n\n", optRes.Elapsed, seeRes.Elapsed/optRes.Elapsed)
	fmt.Println("hottest objects in the recommended layout:")
	printLayout(inst, rec.Final, 8)
}

func objectNames(sys *replay.System) []string {
	out := make([]string, len(sys.Objects))
	for i, o := range sys.Objects {
		out[i] = o.Name
	}
	return out
}
