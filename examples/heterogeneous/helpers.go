package main

import (
	"fmt"
	"sort"

	"dblayout/internal/core"
	"dblayout/internal/layout"
	"dblayout/internal/nlp"
)

// adviseMultiStart runs the advisor from both the heuristic initial layout
// and SEE, as the experiments harness does.
func adviseMultiStart(inst *layout.Instance) (*core.Recommendation, error) {
	heuristic, err := layout.InitialLayout(inst)
	if err != nil {
		return nil, err
	}
	adv, err := core.New(inst, core.Options{
		NLP:            nlp.Options{Seed: 1},
		InitialLayouts: []*layout.Layout{heuristic, layout.SEE(inst.N(), inst.M())},
	})
	if err != nil {
		return nil, err
	}
	return adv.Recommend()
}

// printLayout prints the hottest `top` objects' placements.
func printLayout(inst *layout.Instance, l *layout.Layout, top int) {
	order := make([]int, inst.N())
	for i := range order {
		order[i] = i
	}
	ws := inst.Workloads.Workloads
	sort.SliceStable(order, func(a, b int) bool {
		return ws[order[a]].TotalRate() > ws[order[b]].TotalRate()
	})
	if top < len(order) {
		order = order[:top]
	}
	fmt.Printf("%-18s", "Object")
	for _, t := range inst.Targets {
		fmt.Printf(" %9s", t.Name)
	}
	fmt.Println()
	for _, i := range order {
		fmt.Printf("%-18s", inst.Objects[i].Name)
		for j := 0; j < l.M; j++ {
			if v := l.At(i, j); v > layout.Epsilon {
				fmt.Printf(" %8.1f%%", 100*v)
			} else {
				fmt.Printf(" %9s", ".")
			}
		}
		fmt.Println()
	}
}
