// Tracefit: the full trace-driven pipeline on the public API — record a
// block I/O trace from a running (simulated) system, fit Rome-style workload
// descriptions from it, and feed them to the advisor. This mirrors how the
// paper's advisor is deployed against a production database: instrument,
// trace, fit, advise.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dblayout"
	"dblayout/internal/costmodel"
	"dblayout/internal/storage"
)

func main() {
	// Simulate the "operational system": three objects with distinct
	// access patterns on one disk, traced at the block level.
	fmt.Println("tracing the operational system...")
	eng := storage.NewEngine()
	trace := &storage.Trace{}
	eng.SetTracer(trace)
	disk := storage.NewDisk(eng, "disk", storage.Disk15KConfig())

	// Object 0: sequential table scans. Object 1: random index probes.
	// Object 2: bursty sequential log appends.
	scans := &storage.ClosedSource{Engine: eng, Device: disk, Object: 0, Stream: 1,
		Pattern: &storage.RunPattern{Rng: rand.New(rand.NewSource(1)),
			Extent: 2 << 30, Size: 131072, RunLen: 256, Count: 4000}}
	probes := &storage.ClosedSource{Engine: eng, Device: disk, Object: 1, Stream: 2,
		Pattern: &storage.RunPattern{Rng: rand.New(rand.NewSource(2)),
			Base: 2 << 30, Extent: 1 << 30, Size: 8192, RunLen: 1, Count: 3000}}
	logw := &storage.ClosedSource{Engine: eng, Device: disk, Object: 2, Stream: 3,
		Pattern: &storage.RunPattern{Rng: rand.New(rand.NewSource(3)),
			Base: 3 << 30, Extent: 256 << 20, Size: 8192, RunLen: 64, Count: 2000, WriteFrac: 1},
		Think: 2e-3}
	scans.Start()
	probes.Start()
	logw.Start()
	eng.Run(0)
	fmt.Printf("captured %d trace records over %.0f simulated seconds\n",
		trace.Len(), trace.Duration())

	// Fit workload descriptions from the trace (Rubicon's role).
	names := []string{"TABLE", "INDEX", "LOG"}
	workloads, err := dblayout.FitWorkloads(trace, names, dblayout.FitOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range workloads.Workloads {
		fmt.Printf("fitted %v\n", w)
	}

	// Advise a layout of the three objects onto three disks.
	diskModel := costmodel.Calibrate("disk15k", func(e *storage.Engine) storage.Device {
		return storage.NewDisk(e, "d", storage.Disk15KConfig())
	}, costmodel.FastGrid())
	p := dblayout.Problem{
		Objects: []dblayout.Object{
			{Name: "TABLE", Size: 2 << 30, Kind: dblayout.KindTable},
			{Name: "INDEX", Size: 1 << 30, Kind: dblayout.KindIndex},
			{Name: "LOG", Size: 256 << 20, Kind: dblayout.KindLog},
		},
		Targets: []*dblayout.Target{
			{Name: "disk0", Capacity: 18 << 30, Model: diskModel},
			{Name: "disk1", Capacity: 18 << 30, Model: diskModel},
			{Name: "disk2", Capacity: 18 << 30, Model: diskModel},
		},
		Workloads: workloads,
	}
	rec, err := dblayout.Recommend(p, dblayout.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommended layout (max predicted utilization %.1f%%):\n\n%s",
		100*rec.FinalObjective, dblayout.FormatLayout(p, rec.Final))
}
