// Consolidation: two database instances — a TPC-H reporting database and a
// TPC-C transaction-processing database — share the same four disks (the
// paper's Sec. 6.3 scenario). The advisor lays out all forty objects
// together so the OLAP scans stop destroying the OLTP working set's targets
// and vice versa.
package main

import (
	"fmt"
	"log"

	"dblayout/internal/benchdb"
	"dblayout/internal/core"
	"dblayout/internal/costmodel"
	"dblayout/internal/layout"
	"dblayout/internal/nlp"
	"dblayout/internal/replay"
	"dblayout/internal/rubicon"
)

func main() {
	olap := benchdb.OLAP121()
	olap.Queries = olap.Queries[:10] // keep the example brisk
	oltp := benchdb.OLTP()
	objects := append(append([]layout.Object{}, olap.Catalog.Objects...), oltp.Catalog.Objects...)
	sys := &replay.System{
		Objects: objects,
		Devices: []replay.DeviceSpec{
			replay.Disk15K("disk0"), replay.Disk15K("disk1"),
			replay.Disk15K("disk2"), replay.Disk15K("disk3"),
		},
	}
	names := make([]string, len(objects))
	for i, o := range objects {
		names[i] = o.Name
	}

	fmt.Println("running the consolidated workloads under SEE (tracing)...")
	see := layout.SEE(len(objects), len(sys.Devices))
	fitter := rubicon.NewFitter(names, rubicon.Options{})
	seeOLAP, seeOLTP, err := replay.RunConsolidated(sys, see, olap, oltp, 60,
		replay.Options{Seed: 1, Tracer: fitter})
	if err != nil {
		log.Fatal(err)
	}
	workloads, err := fitter.Fit()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("advising...")
	inst := &layout.Instance{
		Objects:   objects,
		Targets:   sys.Targets(costmodel.NewCache(), costmodel.FastGrid()),
		Workloads: workloads,
	}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}
	heuristic, err := layout.InitialLayout(inst)
	if err != nil {
		log.Fatal(err)
	}
	adv, err := core.New(inst, core.Options{
		NLP:            nlp.Options{Seed: 1},
		InitialLayouts: []*layout.Layout{heuristic, see},
	})
	if err != nil {
		log.Fatal(err)
	}
	rec, err := adv.Recommend()
	if err != nil {
		log.Fatal(err)
	}

	optOLAP, optOLTP, err := replay.RunConsolidated(sys, rec.Final, olap, oltp, 60,
		replay.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s %14s %14s\n", "", "SEE", "optimized")
	fmt.Printf("%-12s %11.0f s %11.0f s  (%.2fx)\n", "OLAP",
		seeOLAP.Elapsed, optOLAP.Elapsed, seeOLAP.Elapsed/optOLAP.Elapsed)
	fmt.Printf("%-12s %9.0f tpmC %9.0f tpmC  (%.2fx)\n", "OLTP",
		seeOLTP.TpmC, optOLTP.TpmC, optOLTP.TpmC/seeOLTP.TpmC)
}
