// Quickstart: describe a small database and two storage targets, calibrate
// device models, and ask the advisor for a layout.
package main

import (
	"fmt"
	"log"

	"dblayout"
	"dblayout/internal/costmodel"
	"dblayout/internal/storage"
)

func main() {
	// Calibrate cost models for the two device types. In a real
	// deployment these come from measuring your hardware once and saving
	// the tables (see cmd/calibrate); here we calibrate the built-in
	// simulated devices with a coarse grid to keep the example fast.
	fmt.Println("calibrating device models...")
	grid := costmodel.FastGrid()
	disk := costmodel.Calibrate("disk15k", func(e *storage.Engine) storage.Device {
		return storage.NewDisk(e, "d", storage.Disk15KConfig())
	}, grid)
	ssd := costmodel.Calibrate("ssd", func(e *storage.Engine) storage.Device {
		return storage.NewSSD(e, "s", storage.SSD32Config())
	}, grid)

	// The database: a big sequentially-scanned fact table, a hot
	// randomly-probed index, and a temporary spill area. The fact table
	// and the temp area are active at the same time (spills happen
	// during scans), which is exactly the interference a workload-aware
	// layout avoids.
	p := dblayout.Problem{
		Objects: []dblayout.Object{
			{Name: "FACTS", Size: 12 << 30, Kind: dblayout.KindTable},
			{Name: "FACTS_IDX", Size: 2 << 30, Kind: dblayout.KindIndex},
			{Name: "TEMP", Size: 4 << 30, Kind: dblayout.KindTemp},
		},
		Targets: []*dblayout.Target{
			{Name: "disk0", Capacity: 18 << 30, Model: disk},
			{Name: "disk1", Capacity: 18 << 30, Model: disk},
			{Name: "ssd0", Capacity: 16 << 30, Model: ssd},
		},
	}
	var err error
	p.Workloads, err = dblayout.NewWorkloadSet(
		&dblayout.Workload{Name: "FACTS", ReadSize: 131072, ReadRate: 400, RunCount: 128,
			Overlap: []float64{1, 0.3, 0.8}},
		&dblayout.Workload{Name: "FACTS_IDX", ReadSize: 8192, ReadRate: 250, RunCount: 1,
			Overlap: []float64{0.3, 1, 0.2}},
		&dblayout.Workload{Name: "TEMP", WriteSize: 131072, WriteRate: 150, ReadSize: 131072,
			ReadRate: 150, RunCount: 64, Overlap: []float64{0.8, 0.2, 1}},
	)
	if err != nil {
		log.Fatal(err)
	}

	rec, err := dblayout.Recommend(p, dblayout.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	seeUtils, _ := dblayout.Utilizations(p, dblayout.SEE(len(p.Objects), len(p.Targets)))
	fmt.Printf("\nSEE baseline predicted utilizations:    %s\n", fmtUtils(seeUtils))
	optUtils, _ := dblayout.Utilizations(p, rec.Final)
	fmt.Printf("recommendation predicted utilizations:  %s\n", fmtUtils(optUtils))
	fmt.Printf("\nrecommended layout (max utilization %.1f%%):\n\n%s",
		100*rec.FinalObjective, dblayout.FormatLayout(p, rec.Final))
}

func fmtUtils(us []float64) string {
	out := ""
	for _, u := range us {
		out += fmt.Sprintf("%6.1f%%", 100*u)
	}
	return out
}
