// Benchmarks regenerating the paper's tables and figures (one per
// figure/table, named BenchmarkFigNN_*), plus ablation benchmarks for the
// design choices called out in DESIGN.md. The experiment benchmarks run the
// reduced-scale pipeline so `go test -bench=.` stays tractable; the
// paper-scale numbers are produced by cmd/experiments and recorded in
// EXPERIMENTS.md. Reproduced quantities (speedups, objective values) are
// attached to each benchmark via ReportMetric.
package dblayout_test

import (
	"context"
	"fmt"
	"testing"

	"dblayout/internal/autoadmin"
	"dblayout/internal/benchdb"
	"dblayout/internal/core"
	"dblayout/internal/costmodel"
	"dblayout/internal/experiments"
	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
	"dblayout/internal/nlp"
	"dblayout/internal/storage"
)

// BenchmarkFig01_OLAP163Layout measures the advisor producing the paper's
// Fig. 1 layout (OLAP1-63 on four identical disks), excluding the trace and
// calibration setup.
func BenchmarkFig01_OLAP163Layout(b *testing.B) {
	inst := layouttest.Instance(4)
	heuristic, err := layout.InitialLayout(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv, err := core.New(inst, core.Options{
			NLP:            nlp.Options{Seed: 1},
			InitialLayouts: []*layout.Layout{heuristic, layout.SEE(inst.N(), inst.M())},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := adv.Recommend(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig08_CostModelSlice measures the calibration that produces the
// Fig. 8 cost-model slice.
func BenchmarkFig08_CostModelSlice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.NewQuickConfig()
		if _, err := experiments.Fig8CostSlice(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11_Homogeneous runs the homogeneous-target study (trace, fit,
// calibrate, advise, replay) and reports the reproduced speedups.
func BenchmarkFig11_Homogeneous(b *testing.B) {
	var runs []*experiments.WorkloadRun
	for i := 0; i < b.N; i++ {
		var err error
		runs, err = experiments.Homogeneous(experiments.NewQuickConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range runs {
		b.ReportMetric(r.SEEElapsed/r.OptElapsed, r.Workload+"-speedup")
	}
}

// BenchmarkFig13_UtilizationStages measures the utilization predictions for
// the four advisor stages the figure reports.
func BenchmarkFig13_UtilizationStages(b *testing.B) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	see := layout.SEE(inst.N(), inst.M())
	init, _ := layout.InitialLayout(inst)
	adv, _ := core.New(inst, core.Options{NLP: nlp.Options{Seed: 1}})
	rec, err := adv.Recommend()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range []*layout.Layout{see, init, rec.Solver, rec.Final} {
			ev.Utilizations(l)
		}
	}
}

// BenchmarkFig15_Consolidation runs the consolidation scenario and reports
// the OLAP speedup and OLTP ratio.
func BenchmarkFig15_Consolidation(b *testing.B) {
	var res *experiments.ConsolidationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Consolidation(experiments.NewQuickConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SEEOLAP/res.OptOLAP, "olap-speedup")
	b.ReportMetric(res.OptTpmC/res.SEETpmC, "tpmc-ratio")
}

// BenchmarkFig17_Heterogeneous runs the disk-heterogeneity study.
func BenchmarkFig17_Heterogeneous(b *testing.B) {
	var rows []experiments.HeteroRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Heterogeneous(experiments.NewQuickConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.SEE/r.Optimized, r.Config+"-speedup")
	}
}

// BenchmarkFig18_SSDCapacitySweep runs the disks-plus-SSD study.
func BenchmarkFig18_SSDCapacitySweep(b *testing.B) {
	var rows []experiments.SSDRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.SSDStudy(experiments.NewQuickConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.SEE/r.Optimized, fmt.Sprintf("ssd%dGB-speedup", r.CapacityGB))
	}
}

// BenchmarkFig19_Advisor measures advisor running time across the paper's
// problem sizes (the quantity Fig. 19 tabulates), on synthetic instances of
// the same shapes.
func BenchmarkFig19_Advisor(b *testing.B) {
	shapes := []struct{ reps, m int }{
		{5, 4},   // N=20, M=4   (OLAP8-63 scale)
		{10, 4},  // N=40, M=4   (consolidation)
		{10, 10}, // N=40, M=10
		{20, 10}, // N=80, M=10  (2x consolidation)
		{40, 10}, // N=160, M=10 (4x consolidation)
	}
	for _, s := range shapes {
		inst := layouttest.Replicated(s.reps, s.m)
		b.Run(fmt.Sprintf("N%dM%d", inst.N(), s.m), func(b *testing.B) {
			heuristic, err := layout.InitialLayout(inst)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				adv, err := core.New(inst, core.Options{
					NLP:            nlp.Options{Seed: 1},
					InitialLayouts: []*layout.Layout{heuristic},
				})
				if err != nil {
					b.Fatal(err)
				}
				rec, err := adv.Recommend()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rec.SolveTime.Seconds(), "solve-s")
				b.ReportMetric(rec.RegularizeTime.Seconds(), "regularize-s")
			}
		})
	}
}

// BenchmarkFig20_AutoAdmin measures the AutoAdmin baseline's layout time,
// which the paper compares against its own advisor's.
func BenchmarkFig20_AutoAdmin(b *testing.B) {
	catalog := benchdb.TPCH()
	queries, err := benchdb.AutoAdminQueries(catalog, benchdb.TPCHQueries(), 0)
	if err != nil {
		b.Fatal(err)
	}
	sizes := make([]int64, len(catalog.Objects))
	for i, o := range catalog.Objects {
		sizes[i] = o.Size
	}
	caps := []int64{18 << 30, 18 << 30, 18 << 30, 18 << 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := autoadmin.Recommend(queries, len(sizes), 4, autoadmin.Config{
			Sizes: sizes, Capacities: caps,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks for DESIGN.md's starred design choices. ---

// BenchmarkAblation_Solver compares the three solver strategies on the same
// instance, reporting the objective each reaches.
func BenchmarkAblation_Solver(b *testing.B) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, _ := layout.InitialLayout(inst)
	for _, tc := range []struct {
		name string
		run  func() nlp.Result
	}{
		{"transfer", func() nlp.Result {
			return nlp.TransferSearch(context.Background(), ev, inst, init, nlp.Options{Seed: 1})
		}},
		{"projected-gradient", func() nlp.Result {
			return nlp.ProjectedGradient(context.Background(), ev, inst, init, nlp.Options{MaxIters: 60})
		}},
		{"anneal", func() nlp.Result {
			res, err := nlp.Anneal(context.Background(), ev, inst, init, nlp.AnnealOptions{Options: nlp.Options{Seed: 1, MaxIters: 4000}})
			if err != nil {
				panic(err)
			}
			return res
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var res nlp.Result
			for i := 0; i < b.N; i++ {
				res = tc.run()
			}
			b.ReportMetric(res.Objective, "objective")
			b.ReportMetric(float64(res.Evals), "evals")
		})
	}
}

// BenchmarkAblation_InitialLayout compares starting the solver from the
// Sec. 4.2 heuristic vs. from SEE (the paper found SEE a sticky local
// minimum).
func BenchmarkAblation_InitialLayout(b *testing.B) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	heuristic, _ := layout.InitialLayout(inst)
	see := layout.SEE(inst.N(), inst.M())
	for _, tc := range []struct {
		name string
		init *layout.Layout
	}{{"heuristic", heuristic}, {"see", see}} {
		b.Run(tc.name, func(b *testing.B) {
			var res nlp.Result
			for i := 0; i < b.N; i++ {
				res = nlp.TransferSearch(context.Background(), ev, inst, tc.init, nlp.Options{Seed: 1, Restarts: 0})
			}
			b.ReportMetric(res.Objective, "objective")
		})
	}
}

// BenchmarkAblation_Regularization compares regularization alone against
// regularization plus the polish pass, reporting the final objectives.
func BenchmarkAblation_Regularization(b *testing.B) {
	inst := layouttest.Instance(4)
	for _, tc := range []struct {
		name string
		opt  core.Options
	}{
		{"greedy-only", core.Options{NLP: nlp.Options{Seed: 1}, SkipPolish: true, Rounds: 1}},
		{"with-polish", core.Options{NLP: nlp.Options{Seed: 1}, Rounds: 1}},
		{"polish+rounds", core.Options{NLP: nlp.Options{Seed: 1}}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var obj float64
			for i := 0; i < b.N; i++ {
				adv, err := core.New(inst, tc.opt)
				if err != nil {
					b.Fatal(err)
				}
				rec, err := adv.Recommend()
				if err != nil {
					b.Fatal(err)
				}
				obj = rec.FinalObjective
			}
			b.ReportMetric(obj, "objective")
		})
	}
}

// BenchmarkCalibration measures the cost of building one device cost model
// with the full calibration grid.
func BenchmarkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		costmodel.Calibrate("disk15k", func(e *storage.Engine) storage.Device {
			return storage.NewDisk(e, "d", storage.Disk15KConfig())
		}, costmodel.FastGrid())
	}
}

// BenchmarkReplayOLAP measures the storage simulator replaying one pass of
// the TPC-H query set under SEE.
func BenchmarkReplayOLAP(b *testing.B) {
	w := benchdb.OLAP121()
	sys := fourDiskSystem(w.Catalog.Objects)
	see := layout.SEE(len(sys.Objects), len(sys.Devices))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := replayRun(sys, see, w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res), "requests")
	}
}
