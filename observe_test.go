package dblayout_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"dblayout"
	"dblayout/internal/obs"
)

// TestRecommendTraceJSONL streams the solver trace through the JSONL writer
// (exactly what the advisor command's -trace-out flag does) and checks every
// line parses back into a TraceEvent.
func TestRecommendTraceJSONL(t *testing.T) {
	p := testProblem()
	var buf bytes.Buffer
	jl := obs.NewJSONL(&buf)
	rec, err := dblayout.Recommend(p, dblayout.Options{
		Seed:  1,
		Trace: func(ev dblayout.TraceEvent) { jl.Write(ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Err(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	lines := 0
	var last dblayout.TraceEvent
	for sc.Scan() {
		var ev dblayout.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines+1, err, sc.Text())
		}
		if ev.Solver == "" {
			t.Fatalf("line %d missing solver name: %s", lines+1, sc.Text())
		}
		lines++
		last = ev
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("no trace lines written")
	}
	if last.Best <= 0 {
		t.Fatalf("final trace best %g not positive", last.Best)
	}
	if len(rec.Trajectory) == 0 {
		t.Fatal("recommendation has no trajectory")
	}
}

// TestRecommendLogger checks the public Options.Logger surfaces the advisor
// phase spans.
func TestRecommendLogger(t *testing.T) {
	p := testProblem()
	var buf bytes.Buffer
	_, err := dblayout.Recommend(p, dblayout.Options{
		Seed:   1,
		Logger: slog.New(slog.NewTextHandler(&buf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, phase := range []string{"phase=seed", "phase=solve", "phase=regularize", "phase=validate"} {
		if !strings.Contains(out, phase) {
			t.Errorf("log output missing %s:\n%s", phase, out)
		}
	}
}
