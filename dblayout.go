// Package dblayout is a workload-aware storage layout advisor for database
// systems, implementing Ozmen, Salem, Schindler and Daniel, "Workload-Aware
// Storage Layout for Database Systems" (SIGMOD 2010).
//
// Given a set of database objects (tables, indexes, logs, temporary
// tablespaces), a set of storage targets (disks, SSDs, RAID groups) with
// calibrated performance models, and a Rome-style I/O workload description
// per object, the advisor recommends a layout — an assignment of object
// fractions to targets — that minimizes the maximum predicted target
// utilization, balancing load while avoiding the interference that arises
// when temporally-correlated workloads share a target.
//
// # Quick start
//
//	objects := []dblayout.Object{
//	    {Name: "ORDERS", Size: 8 << 30, Kind: dblayout.KindTable},
//	    {Name: "ORDERS_PK", Size: 1 << 30, Kind: dblayout.KindIndex},
//	}
//	targets := []*dblayout.Target{
//	    {Name: "disk0", Capacity: 100 << 30, Model: diskModel},
//	    {Name: "ssd0", Capacity: 32 << 30, Model: ssdModel},
//	}
//	workloads, _ := dblayout.NewWorkloadSet(
//	    &dblayout.Workload{Name: "ORDERS", ReadSize: 131072, ReadRate: 300, RunCount: 64},
//	    &dblayout.Workload{Name: "ORDERS_PK", ReadSize: 8192, ReadRate: 150, RunCount: 1},
//	)
//	rec, err := dblayout.Recommend(dblayout.Problem{
//	    Objects: objects, Targets: targets, Workloads: workloads,
//	})
//
// Cost models come from calibration (CalibrateDisk, CalibrateSSD, or
// costmodel.Calibrate against any simulated device), from disk via
// LoadModel, or from your own measurements. Workload descriptions can be
// fitted from block I/O traces with FitWorkloads, mirroring the paper's
// trace-based methodology.
//
// The packages under internal/ contain the full reproduction of the paper's
// evaluation: the storage simulator standing in for the paper's testbed, the
// TPC-H/TPC-C workload specifications, the replay engine, the AutoAdmin
// baseline, and one experiment harness per figure (internal/experiments; run
// them with cmd/experiments).
package dblayout

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"time"

	"dblayout/internal/core"
	"dblayout/internal/costmodel"
	"dblayout/internal/layout"
	"dblayout/internal/nlp"
	"dblayout/internal/rome"
	"dblayout/internal/rubicon"
	"dblayout/internal/storage"
)

// Re-exported problem-description types. See the internal packages for full
// documentation of each field.
type (
	// Object is a database object to lay out.
	Object = layout.Object
	// ObjectKind classifies objects (table, index, log, temp).
	ObjectKind = layout.ObjectKind
	// Target is a storage target with a capacity and a cost model.
	Target = layout.Target
	// Layout is the N x M assignment matrix of object fractions to
	// targets.
	Layout = layout.Layout
	// Workload is the Rome-style per-object workload description.
	Workload = rome.Workload
	// WorkloadSet is an ordered collection of workloads.
	WorkloadSet = rome.Set
	// CostModel is a calibrated black-box target performance model.
	CostModel = costmodel.Model
	// Recommendation is the advisor's output with all intermediate
	// stages.
	Recommendation = core.Recommendation
	// Constraints are administrative placement restrictions.
	Constraints = layout.Constraints
	// TraceRecord is one block I/O request of a trace.
	TraceRecord = storage.TraceRecord
	// Trace is an in-memory block I/O trace.
	Trace = storage.Trace
	// TraceEvent is one solver iteration observed by Options.Trace.
	TraceEvent = nlp.TraceEvent
	// TrajPoint is one decimated point of a Recommendation's solver
	// objective trajectory.
	TrajPoint = nlp.TrajPoint
	// Degradation is the structured reason attached to a degraded
	// recommendation or repair.
	Degradation = core.Degradation
	// Repair is the output of RecommendRepair: a layout over the surviving
	// targets plus the migration plan to reach it.
	Repair = core.Repair
)

// Sentinel errors, matchable with errors.Is on anything Recommend,
// RecommendContext, PlaceIncremental, or RecommendRepair returns — including
// the Cause of a Degradation.
var (
	// ErrInfeasible reports a problem with no valid layout (capacity or
	// constraints).
	ErrInfeasible = core.ErrInfeasible
	// ErrBudgetExceeded reports that Options.SolveBudget ran out; the
	// recommendation carrying it as a degradation cause is still valid.
	ErrBudgetExceeded = core.ErrBudgetExceeded
	// ErrModelFailure reports that a cost model panicked or produced a
	// non-finite or negative cost.
	ErrModelFailure = core.ErrModelFailure
)

// Object kinds.
const (
	KindTable = layout.KindTable
	KindIndex = layout.KindIndex
	KindLog   = layout.KindLog
	KindTemp  = layout.KindTemp
)

// NewWorkloadSet builds and validates a workload set.
func NewWorkloadSet(ws ...*Workload) (*WorkloadSet, error) {
	return rome.NewSet(ws...)
}

// Problem describes one layout problem.
type Problem struct {
	// Objects are the database objects, in workload order.
	Objects []Object
	// Targets are the storage targets.
	Targets []*Target
	// Workloads holds one description per object (same order and names
	// as Objects).
	Workloads *WorkloadSet
	// StripeSize is the stripe size of the mechanism implementing the
	// layout; zero selects the default (128 KiB).
	StripeSize int64
	// Constraints are optional administrative placement restrictions
	// (pin objects to targets, forbid targets, keep pairs separated).
	Constraints *Constraints
}

// Options tunes Recommend. The zero value selects the paper's defaults:
// transfer-search solver, multi-start from the heuristic initial layout and
// SEE, two solve/regularize rounds, regularization with polish.
type Options struct {
	// SkipRegularization returns the solver's possibly non-regular layout
	// directly, for layout mechanisms that support arbitrary fractions.
	SkipRegularization bool
	// Seed makes the search reproducible.
	Seed int64
	// MultiStartSEE additionally seeds the solver from the SEE layout
	// (recommended; enabled by default through Recommend).
	DisableMultiStart bool
	// Logger, when non-nil, receives advisor phase spans (seed, solve,
	// regularize, validate) with durations and objective deltas. Nil
	// disables logging with no overhead.
	Logger *slog.Logger
	// Trace, when non-nil, observes every solver iteration. The hook is
	// never called concurrently and must be fast. Nil disables tracing
	// with no overhead. Under parallel solving (see Workers) the delivered
	// stream is merged in deterministic restart order, so it is identical
	// at every worker count.
	Trace func(TraceEvent)
	// Workers bounds how many solver restarts run concurrently. Zero
	// selects min(restarts+1, GOMAXPROCS); 1 forces a fully serial solve.
	// The recommended layout is bit-identical for a given Seed at any
	// worker count — parallelism changes wall-clock time, never the
	// result — except when SolveBudget or a cancellation truncates the
	// search.
	Workers int
	// Portfolio races the transfer, anneal and (when the problem has no
	// administrative constraints) projected-gradient solvers concurrently
	// from each starting layout and keeps the best result, instead of
	// running the transfer solver alone. Ties break toward the fixed
	// solver order, so the outcome is still deterministic.
	Portfolio bool
	// SolveBudget caps the wall-clock time spent in solver phases. When it
	// runs out the advisor completes with its best layout so far and marks
	// the recommendation Degraded (cause ErrBudgetExceeded) instead of
	// failing. Zero means unbounded.
	SolveBudget time.Duration
}

// instance converts the problem into the internal representation.
func (p Problem) instance() *layout.Instance {
	return &layout.Instance{
		Objects:     p.Objects,
		Targets:     p.Targets,
		Workloads:   p.Workloads,
		StripeSize:  p.StripeSize,
		Constraints: p.Constraints,
	}
}

// Recommend runs the layout advisor on the problem and returns the
// recommendation. The returned Recommendation's Final layout is regular
// (unless SkipRegularization) and valid for the problem's capacities. It is
// RecommendContext with a background context.
func Recommend(p Problem, opts ...Options) (*Recommendation, error) {
	return RecommendContext(context.Background(), p, opts...)
}

// RecommendContext runs the layout advisor under a context.
//
// An already-cancelled context returns (nil, ctx.Err()) without solving.
// Cancellation mid-run stops the solvers within a few milliseconds and
// returns the best valid layout found so far — marked Degraded — alongside
// ctx.Err(). Budget exhaustion (Options.SolveBudget) and cost-model failures
// degrade instead of failing whenever a valid layout can still be produced;
// check Recommendation.Degraded and its Degradation for what happened.
func RecommendContext(ctx context.Context, p Problem, opts ...Options) (*Recommendation, error) {
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	inst := p.instance()
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	copt := core.Options{
		SkipRegularization: opt.SkipRegularization,
		NLP:                nlp.Options{Seed: opt.Seed, Trace: opt.Trace, Workers: opt.Workers},
		Logger:             opt.Logger,
		SolveBudget:        opt.SolveBudget,
	}
	if opt.Portfolio {
		copt.Solver = core.SolverPortfolio
	}
	if !opt.DisableMultiStart {
		// Seed from the heuristic initial layout plus SEE when both are
		// available; when the heuristic fails, leave seeding to the
		// advisor, whose ladder falls back to SEE by itself.
		if heuristic, err := layout.InitialLayout(inst); err == nil {
			copt.InitialLayouts = []*layout.Layout{heuristic}
			// SEE is a useful second starting point but may violate
			// administrative constraints; seed from it only when valid.
			if see := layout.SEE(inst.N(), inst.M()); inst.ValidateLayout(see) == nil {
				copt.InitialLayouts = append(copt.InitialLayouts, see)
			}
		}
	}
	adv, err := core.New(inst, copt)
	if err != nil {
		return nil, err
	}
	return adv.RecommendContext(ctx)
}

// RecommendRepair re-solves the layout after the listed targets fail: it
// excludes them, pins every fraction residing on surviving targets, re-solves
// over the displaced objects, and returns the repaired layout together with
// the migration plan from `current`. See core.RecommendRepair for the full
// degraded-mode contract.
func RecommendRepair(ctx context.Context, p Problem, current *Layout, failed []int, opts ...Options) (*Repair, error) {
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	return core.RecommendRepair(ctx, p.instance(), current, failed, core.Options{
		NLP:         nlp.Options{Seed: opt.Seed, Trace: opt.Trace, Workers: opt.Workers},
		Logger:      opt.Logger,
		SolveBudget: opt.SolveBudget,
	})
}

// Utilizations returns the advisor model's predicted per-target utilizations
// of a layout for the problem — the quantity the recommendation minimizes
// the maximum of.
func Utilizations(p Problem, l *Layout) ([]float64, error) {
	inst := p.instance()
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if err := inst.ValidateLayout(l); err != nil {
		return nil, err
	}
	return layout.NewEvaluator(inst).Utilizations(l), nil
}

// SEE returns the stripe-everything-everywhere baseline layout for n objects
// on m targets.
func SEE(n, m int) *Layout { return layout.SEE(n, m) }

// Move is one step of a migration plan.
type Move = layout.Move

// MigrationPlan computes the data movements needed to convert one layout of
// the problem's objects into another, so a recommendation can be priced and
// acted on.
func MigrationPlan(p Problem, from, to *Layout) ([]Move, error) {
	sizes := make([]int64, len(p.Objects))
	for i, o := range p.Objects {
		sizes[i] = o.Size
	}
	return layout.MigrationPlan(from, to, sizes)
}

// PlanBytes sums the data volume a migration plan moves.
func PlanBytes(plan []Move) int64 { return layout.PlanBytes(plan) }

// PlaceIncremental places the listed (new or grown) objects into an existing
// layout without moving any other object's data — the FlexVol-style dynamic
// allocation mode sketched in the paper's conclusion. The instance must
// describe all objects; rows of `current` for the new objects are ignored.
func PlaceIncremental(p Problem, current *Layout, newObjects []int, seed int64) (*Layout, error) {
	return PlaceIncrementalContext(context.Background(), p, current, newObjects, seed)
}

// PlaceIncrementalContext is PlaceIncremental under a context: an
// already-cancelled context places nothing, and cancellation mid-optimization
// returns ctx.Err().
func PlaceIncrementalContext(ctx context.Context, p Problem, current *Layout, newObjects []int, seed int64) (*Layout, error) {
	return core.PlaceIncrementalContext(ctx, p.instance(), current, newObjects, nlp.Options{Seed: seed})
}

// FitOptions tunes workload fitting from traces.
type FitOptions struct {
	// WindowSize is the co-activity window for temporal overlap
	// estimation (default 1 s).
	WindowSize float64
	// ActiveRates computes request rates over active windows rather than
	// the whole trace; recommended for bursty (phase-structured)
	// workloads.
	ActiveRates bool
}

// FitWorkloads fits Rome-style workload descriptions from a block I/O
// trace, one per object name; trace records carry object indices into the
// names slice. This is the role the Rubicon tool plays in the paper.
func FitWorkloads(tr *Trace, names []string, opt FitOptions) (*WorkloadSet, error) {
	return rubicon.FitSet(tr, names, rubicon.Options{
		WindowSize:  opt.WindowSize,
		ActiveRates: opt.ActiveRates,
	})
}

// CalibrateDisk builds a cost model for the built-in 15K RPM disk simulator
// using the full calibration sweep. For custom devices use
// costmodel.Calibrate directly.
func CalibrateDisk() *CostModel {
	return costmodel.Calibrate("disk15k", func(e *storage.Engine) storage.Device {
		return storage.NewDisk(e, "disk", storage.Disk15KConfig())
	}, costmodel.DefaultGrid())
}

// CalibrateSSD builds a cost model for the built-in SSD simulator.
func CalibrateSSD() *CostModel {
	return costmodel.Calibrate("ssd", func(e *storage.Engine) storage.Device {
		return storage.NewSSD(e, "ssd", storage.SSD32Config())
	}, costmodel.DefaultGrid())
}

// SaveModel writes a cost model as JSON.
func SaveModel(w io.Writer, m *CostModel) error { return m.Save(w) }

// LoadModel reads a cost model saved by SaveModel.
func LoadModel(r io.Reader) (*CostModel, error) { return costmodel.Load(r) }

// ReadTrace parses a JSON-lines block I/O trace.
func ReadTrace(r io.Reader) (*Trace, error) { return storage.ReadTrace(r) }

// FormatLayout renders a layout as a percentage table with object and target
// names.
func FormatLayout(p Problem, l *Layout) string {
	out := fmt.Sprintf("%-20s", "Object")
	for _, t := range p.Targets {
		out += fmt.Sprintf(" %10s", t.Name)
	}
	out += "\n"
	for i, o := range p.Objects {
		out += fmt.Sprintf("%-20s", o.Name)
		for j := range p.Targets {
			if v := l.At(i, j); v > 1e-9 {
				out += fmt.Sprintf(" %9.1f%%", 100*v)
			} else {
				out += fmt.Sprintf(" %10s", ".")
			}
		}
		out += "\n"
	}
	return out
}
