package dblayout_test

import (
	"testing"

	"dblayout"
	"dblayout/internal/benchdb"
	"dblayout/internal/experiments"
	"dblayout/internal/layouttest"
)

// TestPipelineDeterminism runs the full experiment pipeline (replay, trace
// fitting, calibration, advising, replay of the recommendation) twice and
// requires bit-identical results: reproducibility is a core requirement for
// a benchmark harness.
func TestPipelineDeterminism(t *testing.T) {
	run := func() []float64 {
		cfg := experiments.NewQuickConfig()
		runs, err := experiments.Homogeneous(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, r := range runs {
			out = append(out, r.SEEElapsed, r.OptElapsed, r.Rec.FinalObjective)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pipeline not deterministic at %d: %v vs %v", i, a, b)
		}
	}
}

// TestRecommendationNeverPredictedWorseThanSEE checks the multi-start
// guarantee across a spread of problem shapes: whatever the instance, the
// advisor's final layout is never predicted worse than SEE when SEE is
// feasible.
func TestRecommendationNeverPredictedWorseThanSEE(t *testing.T) {
	for _, m := range []int{2, 3, 4, 6} {
		inst := layouttest.Instance(m)
		p := dblayout.Problem{Objects: inst.Objects, Targets: inst.Targets, Workloads: inst.Workloads}
		rec, err := dblayout.Recommend(p, dblayout.Options{Seed: int64(m)})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		utils, err := dblayout.Utilizations(p, dblayout.SEE(len(p.Objects), m))
		if err != nil {
			t.Fatal(err)
		}
		see := 0.0
		for _, u := range utils {
			if u > see {
				see = u
			}
		}
		if rec.FinalObjective > see*(1+1e-9) {
			t.Errorf("m=%d: final %.4f worse than SEE %.4f", m, rec.FinalObjective, see)
		}
	}
}

// TestWorkloadCatalogConsistency cross-checks the benchdb specifications
// against the replay engine: every query must be executable on the
// homogeneous system without touching unknown objects or violating stripe
// alignment.
func TestWorkloadCatalogConsistency(t *testing.T) {
	for _, w := range []*benchdb.OLAPWorkload{benchdb.OLAP121(), benchdb.OLAP163(), benchdb.OLAP863()} {
		if err := benchdb.ValidateQueries(w.Catalog, w.Queries); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		for _, q := range w.Queries {
			for _, p := range q.Phases {
				for _, s := range p.Streams {
					size := s.ReqSize
					if size == 0 {
						continue
					}
					if (128<<10)%size != 0 {
						t.Errorf("%s/%s: request size %d does not divide the stripe", w.Name, q.Name, size)
					}
				}
			}
		}
	}
}
